// Package gridsig implements the grid-based spatial signatures of Section 4:
// a uniform p×p decomposition of the data space, signature generation with
// clipped-area element weights w(g|o) = |g ∩ o.R|, per-cell object counting
// for the global grid order (ascending count), and the expected-cost model
// used for grid granularity selection (Section 4.3).
package gridsig

import (
	"fmt"
	"slices"
	"sync"

	"github.com/sealdb/seal/internal/geo"
)

// Grid is a uniform P×P partition of a space rectangle. Cells are addressed
// by (ix, iy) with ix, iy in [0, P), or by the linear CellID iy*P + ix.
type Grid struct {
	Space geo.Rect
	P     int
	cellW float64
	cellH float64
}

// CellWeight is one element of a grid signature: a cell and the area of the
// region clipped to it.
type CellWeight struct {
	Cell uint32
	W    float64
}

// New creates a P×P grid over space. P must be positive and the space must
// have positive area.
func New(space geo.Rect, p int) (*Grid, error) {
	if p <= 0 {
		return nil, fmt.Errorf("gridsig: granularity %d must be positive", p)
	}
	if !space.Valid() || space.IsDegenerate() {
		return nil, fmt.Errorf("gridsig: space %v must have positive area", space)
	}
	return &Grid{
		Space: space,
		P:     p,
		cellW: space.Width() / float64(p),
		cellH: space.Height() / float64(p),
	}, nil
}

// Cells returns the total number of cells, P².
func (g *Grid) Cells() int { return g.P * g.P }

// CellID returns the linear ID of cell (ix, iy).
func (g *Grid) CellID(ix, iy int) uint32 { return uint32(iy*g.P + ix) }

// CellRect returns the rectangle of the cell with the given linear ID.
func (g *Grid) CellRect(id uint32) geo.Rect {
	ix := int(id) % g.P
	iy := int(id) / g.P
	return geo.Rect{
		MinX: g.Space.MinX + float64(ix)*g.cellW,
		MinY: g.Space.MinY + float64(iy)*g.cellH,
		MaxX: g.Space.MinX + float64(ix+1)*g.cellW,
		MaxY: g.Space.MinY + float64(iy+1)*g.cellH,
	}
}

// cellRange returns the half-open index ranges [ix0,ix1) × [iy0,iy1) of the
// cells sharing positive area with r (clamped to the grid). ok is false when
// r does not overlap the space at all.
func (g *Grid) cellRange(r geo.Rect) (ix0, iy0, ix1, iy1 int, ok bool) {
	inter, has := r.Intersection(g.Space)
	if !has || inter.IsDegenerate() {
		return 0, 0, 0, 0, false
	}
	ix0 = int((inter.MinX - g.Space.MinX) / g.cellW)
	iy0 = int((inter.MinY - g.Space.MinY) / g.cellH)
	ix1 = int((inter.MaxX-g.Space.MinX)/g.cellW) + 1
	iy1 = int((inter.MaxY-g.Space.MinY)/g.cellH) + 1
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	ix0 = clamp(ix0, 0, g.P)
	iy0 = clamp(iy0, 0, g.P)
	ix1 = clamp(ix1, 0, g.P)
	iy1 = clamp(iy1, 0, g.P)
	if ix0 >= ix1 || iy0 >= iy1 {
		return 0, 0, 0, 0, false
	}
	return ix0, iy0, ix1, iy1, true
}

// Signature appends the grid-based signature of region r (Definition 4) to
// out and returns it: every cell sharing positive area with r, weighted by
// the clipped area |g ∩ r|. Cells with zero overlap area (boundary touches)
// are excluded — they contribute nothing to the signature similarity.
func (g *Grid) Signature(r geo.Rect, out []CellWeight) []CellWeight {
	ix0, iy0, ix1, iy1, ok := g.cellRange(r)
	if !ok {
		return out
	}
	for iy := iy0; iy < iy1; iy++ {
		for ix := ix0; ix < ix1; ix++ {
			id := g.CellID(ix, iy)
			w := g.CellRect(id).IntersectionArea(r)
			if w > 0 {
				out = append(out, CellWeight{Cell: id, W: w})
			}
		}
	}
	return out
}

// CellCount returns the number of cells in r's signature without computing
// weights (an upper bound including zero-area boundary cells).
func (g *Grid) CellCount(r geo.Rect) int {
	ix0, iy0, ix1, iy1, ok := g.cellRange(r)
	if !ok {
		return 0
	}
	return (ix1 - ix0) * (iy1 - iy0)
}

// Counter accumulates count(g) — the number of object regions intersecting
// each cell — which defines the global grid order (ascending count,
// Section 4.2). It switches between a dense array and a sparse map based on
// the grid size, so fine granularities (8192²) stay affordable.
type Counter struct {
	grid   *Grid
	dense  []uint32
	sparse map[uint32]uint32

	// Coarse summed-area table for EstimateRectPostings, built lazily on
	// first use (only adaptive planning ever asks). satS is the coarsening
	// factor (satS×satS fine cells per SAT cell), satW×satH the coarse
	// dimensions; sat holds (satW+1)×(satH+1) inclusive prefix sums.
	satOnce    sync.Once
	sat        []uint64
	satS, satW int
}

// denseLimit caps the dense counter allocation at 4M cells (16 MB).
const denseLimit = 1 << 22

// NewCounter creates a counter for grid g.
func NewCounter(g *Grid) *Counter {
	c := &Counter{grid: g}
	if g.Cells() <= denseLimit {
		c.dense = make([]uint32, g.Cells())
	} else {
		c.sparse = make(map[uint32]uint32)
	}
	return c
}

// AddRegion increments the count of every cell sharing positive area with r.
func (c *Counter) AddRegion(r geo.Rect) {
	ix0, iy0, ix1, iy1, ok := c.grid.cellRange(r)
	if !ok {
		return
	}
	for iy := iy0; iy < iy1; iy++ {
		for ix := ix0; ix < ix1; ix++ {
			id := c.grid.CellID(ix, iy)
			if c.grid.CellRect(id).IntersectionArea(r) <= 0 {
				continue
			}
			if c.dense != nil {
				c.dense[id]++
			} else {
				c.sparse[id]++
			}
		}
	}
}

// AddCount sets count(g) for one cell directly, for callers that already
// know the counts (e.g. reopening a persisted index whose posting-list
// lengths are the cell counts). Cells never added keep count 0.
func (c *Counter) AddCount(id uint32, n uint32) {
	if c.dense != nil {
		c.dense[id] += n
	} else if n > 0 {
		c.sparse[id] += n
	}
}

// Count returns count(g) for the cell.
func (c *Counter) Count(id uint32) uint32 {
	if c.dense != nil {
		return c.dense[id]
	}
	return c.sparse[id]
}

// EstimateRectPostings estimates the total posting count of the cells a
// query rect r touches. Ranges up to 8×maxSample cells are summed exactly;
// larger ranges use a coarse summed-area table (built lazily, once), so the
// estimate is exact up to the density of the boundary strips instead of a
// high-variance point sample — a planner routing a query by a cell sample
// that happened to miss the hot cluster picks catastrophically wrong
// filters. Steady-state it never allocates, so cost estimation can call it
// on the query hot path. maxSample <= 0 means sum every covered cell.
func (c *Counter) EstimateRectPostings(r geo.Rect, maxSample int) float64 {
	ix0, iy0, ix1, iy1, ok := c.grid.cellRange(r)
	if !ok {
		return 0
	}
	nx, ny := ix1-ix0, iy1-iy0
	total := nx * ny
	if maxSample <= 0 || total <= 8*maxSample {
		var sum uint64
		for iy := iy0; iy < iy1; iy++ {
			for ix := ix0; ix < ix1; ix++ {
				sum += uint64(c.Count(c.grid.CellID(ix, iy)))
			}
		}
		return float64(sum)
	}
	c.satOnce.Do(c.buildSAT)
	// Sum the covering coarse rect exactly, then scale by the fraction of
	// its fine cells the query range actually covers (a uniform-density
	// assumption confined to the boundary strips).
	cx0, cy0 := ix0/c.satS, iy0/c.satS
	cx1, cy1 := (ix1+c.satS-1)/c.satS, (iy1+c.satS-1)/c.satS
	w := c.satW + 1
	outer := c.sat[cy1*w+cx1] - c.sat[cy0*w+cx1] - c.sat[cy1*w+cx0] + c.sat[cy0*w+cx0]
	fineOuter := (cx1 - cx0) * (cy1 - cy0) * c.satS * c.satS
	return float64(outer) * float64(total) / float64(fineOuter)
}

// satDim bounds the summed-area table to ~257×257 entries (~528 KB).
const satDim = 256

// buildSAT bins the per-cell counts satS×satS and prefix-sums them.
func (c *Counter) buildSAT() {
	p := c.grid.P
	c.satS = (p + satDim - 1) / satDim
	c.satW = (p + c.satS - 1) / c.satS
	w := c.satW + 1
	sat := make([]uint64, w*w)
	add := func(id uint32, n uint32) {
		ix := int(id) % p / c.satS
		iy := int(id) / p / c.satS
		sat[(iy+1)*w+(ix+1)] += uint64(n)
	}
	if c.dense != nil {
		for id, n := range c.dense {
			if n != 0 {
				add(uint32(id), n)
			}
		}
	} else {
		for id, n := range c.sparse {
			add(id, n)
		}
	}
	for iy := 1; iy < w; iy++ {
		for ix := 1; ix < w; ix++ {
			sat[iy*w+ix] += sat[iy*w+ix-1] + sat[(iy-1)*w+ix] - sat[(iy-1)*w+ix-1]
		}
	}
	c.sat = sat
}

// SortSignature orders a signature by the global grid order: ascending
// count(g), ties by ascending cell ID. Both object signatures (at build
// time) and query signatures (at query time) use this order, which is what
// makes prefix filtering sound.
func (c *Counter) SortSignature(sig []CellWeight) {
	slices.SortFunc(sig, func(a, b CellWeight) int {
		ca, cb := c.Count(a.Cell), c.Count(b.Cell)
		switch {
		case ca < cb:
			return -1
		case ca > cb:
			return 1
		case a.Cell < b.Cell:
			return -1
		case a.Cell > b.Cell:
			return 1
		default:
			return 0
		}
	})
}
