package trace

import (
	"sync"
	"testing"
	"time"
)

// TestNilRecIsDisabled: every method must no-op on a nil recorder — the
// untraced hot path threads a nil *Rec through the whole pipeline.
func TestNilRecIsDisabled(t *testing.T) {
	var r *Rec
	if r.Enabled() {
		t.Fatal("nil Rec reports Enabled")
	}
	r.AddSpan(Span{Stage: StageFilter})
	r.AddPlan(PlanDecision{})
	r.AddPruned(PrunedShard{})
	if got := r.Offset(time.Now()); got != 0 {
		t.Fatalf("nil Rec Offset = %v, want 0", got)
	}
	spans, plans, pruned, elapsed := r.Snapshot()
	if spans != nil || plans != nil || pruned != nil || elapsed != 0 {
		t.Fatalf("nil Rec Snapshot = (%v, %v, %v, %v), want all empty", spans, plans, pruned, elapsed)
	}
}

// TestRecordAndSnapshot: spans land on a shared monotonic timeline and the
// snapshot is an independent copy.
func TestRecordAndSnapshot(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("live Rec reports disabled")
	}
	start := time.Now()
	off := r.Offset(start)
	if off < 0 {
		t.Fatalf("Offset of a later time is negative: %v", off)
	}
	r.AddSpan(Span{Stage: StageFilter, Shard: 2, Family: 1, Start: off, Dur: time.Microsecond, Candidates: 7})
	r.AddPlan(PlanDecision{Shard: 2, Chosen: 1, Families: []FamilyCost{{Family: 0}, {Family: 1}}})
	r.AddPruned(PrunedShard{Shard: 3, Bound: 0.01, TauR: 0.3})

	spans, plans, pruned, elapsed := r.Snapshot()
	if len(spans) != 1 || len(plans) != 1 || len(pruned) != 1 {
		t.Fatalf("snapshot sizes = (%d, %d, %d), want (1, 1, 1)", len(spans), len(plans), len(pruned))
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0", elapsed)
	}
	if spans[0].Stage != StageFilter || spans[0].Shard != 2 || spans[0].Candidates != 7 {
		t.Fatalf("span round-trip mismatch: %+v", spans[0])
	}
	if plans[0].Chosen != 1 || len(plans[0].Families) != 2 {
		t.Fatalf("plan round-trip mismatch: %+v", plans[0])
	}

	// The snapshot must not alias the recorder: later appends stay invisible.
	r.AddSpan(Span{Stage: StageMerge})
	if len(spans) != 1 {
		t.Fatal("snapshot aliases the recorder")
	}
	spans2, _, _, _ := r.Snapshot()
	if len(spans2) != 2 {
		t.Fatalf("second snapshot has %d spans, want 2", len(spans2))
	}
}

// TestConcurrentRecording: shards record from their own goroutines; the
// recorder must tolerate concurrent appends and snapshots (run under -race).
func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const workers, each = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.AddSpan(Span{Stage: StageFilter, Shard: w})
				r.AddPlan(PlanDecision{Shard: w})
				if i%10 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	spans, plans, _, _ := r.Snapshot()
	if len(spans) != workers*each || len(plans) != workers*each {
		t.Fatalf("got %d spans, %d plans, want %d each", len(spans), len(plans), workers*each)
	}
}

// TestStageString pins the stage names — they are metric labels and wire
// values, so renames are breaking changes.
func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageAdmit:  "admit",
		StagePlan:   "plan",
		StageFilter: "filter",
		StageVerify: "verify",
		StageMerge:  "merge",
		Stage(99):   "unknown",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, name)
		}
	}
}
