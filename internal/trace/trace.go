// Package trace is the query-tracing spine of the engine: a lightweight span
// recorder threaded through the full execution pipeline — request admission,
// plan/prune decisions, per-shard filter scans, verification, merge — so one
// query's cost can be attributed stage by stage after the fact.
//
// The package is a leaf (standard library only) so every layer can import it:
// core records filter/verify spans, the planner records its decisions with
// the cost-model inputs that produced them, the engine records plan, prune
// and merge events, and the public API converts the recorder into its wire
// form.
//
// Tracing is strictly opt-in and free when off: every method no-ops on a nil
// *Rec receiver, so the untraced hot path pays a single nil check and zero
// allocations — the AllocsPerRun regression tests in core and planner pin
// this. A live Rec is safe for concurrent use (shards record spans from
// their own goroutines); timings are monotonic offsets from the recorder's
// birth, so spans from different goroutines share one timeline.
package trace

import (
	"sync"
	"time"
)

// Stage identifies one pipeline stage of a traced query.
type Stage uint8

const (
	// StageAdmit covers request validation and query compilation, before any
	// engine work.
	StageAdmit Stage = iota
	// StagePlan covers the planner's family choice for one shard.
	StagePlan
	// StageFilter covers one shard's candidate collection (the filter scan).
	StageFilter
	// StageVerify covers one shard's exact verification of its candidates.
	StageVerify
	// StageMerge covers the engine-level gather: remap, union, sort.
	StageMerge
)

// String names the stage as it appears in traces, logs and metric labels.
func (s Stage) String() string {
	switch s {
	case StageAdmit:
		return "admit"
	case StagePlan:
		return "plan"
	case StageFilter:
		return "filter"
	case StageVerify:
		return "verify"
	case StageMerge:
		return "merge"
	default:
		return "unknown"
	}
}

// Span is one timed stage of a traced query. Start and Dur are monotonic
// offsets from the recorder's birth, so spans recorded by concurrent shard
// goroutines lie on one shared timeline (and may overlap).
type Span struct {
	Stage Stage
	// Shard is the shard the span ran on; -1 for engine- or query-level
	// spans (admit, merge).
	Shard int
	// Family is the filter-family index the stage ran with; -1 when no
	// family applies (admit, merge, static plan spans record the engine's
	// single family as 0).
	Family int
	Start  time.Duration
	Dur    time.Duration
	// SearchStats counters attributed to this span, where the stage has
	// them: filter spans carry probe/scan/candidate counts, verify spans
	// carry candidates in and results out.
	ListsProbed     int
	PostingsScanned int
	Candidates      int
	Results         int
}

// FamilyCost is the cost model's view of one filter family for one query:
// the estimator's predicted work units, the calibrated nanosecond lanes, and
// the resulting predicted cost both raw and risk-adjusted (the value the
// planner actually compares). This is what makes a routing decision
// auditable after the fact.
type FamilyCost struct {
	Family int
	// Estimator hints: predicted posting-list probes, postings scanned and
	// candidates produced (core.CostHint).
	Probes     float64
	Postings   float64
	Candidates float64
	// FullVerify marks families whose candidates pay a full token-set
	// intersection at verification.
	FullVerify bool
	// Calibrated lanes: nanoseconds per posting-scan unit and per candidate.
	NsPosting   float64
	NsCandidate float64
	// PredictedNS is lanes × hints; AdjustedNS additionally carries the
	// full-verification risk margin and is the number the planner compared.
	PredictedNS float64
	AdjustedNS  float64
}

// PlanDecision records one shard's family choice and how it was reached.
type PlanDecision struct {
	Shard  int
	Chosen int
	// Cached marks a plan-cache hit (the cost table still reports the
	// model's current view, which is what the cached pick was made under
	// modulo drift). ColdStart marks round-robin routing before the model is
	// trusted; Refresh marks a steady-state re-exploration tick.
	Cached    bool
	ColdStart bool
	Refresh   bool
	Families  []FamilyCost
}

// PrunedShard records one shard skipped before dispatch: its extent-overlap
// similarity bound provably cannot reach the query's spatial threshold.
type PrunedShard struct {
	Shard int
	// Bound is the upper bound on any member's spatial similarity to the
	// query; the shard was pruned because Bound < TauR (with margin).
	Bound float64
	TauR  float64
}

// Rec records one query's trace. The zero value is not useful; create with
// New. A nil *Rec is the disabled recorder: every method no-ops, so code
// threads a possibly-nil *Rec unconditionally.
type Rec struct {
	start time.Time

	mu     sync.Mutex
	spans  []Span
	plans  []PlanDecision
	pruned []PrunedShard
}

// New starts a recorder; its birth is the trace's time zero.
func New() *Rec { return &Rec{start: time.Now()} }

// Enabled reports whether spans are being recorded.
func (r *Rec) Enabled() bool { return r != nil }

// Offset converts an absolute time into the recorder's monotonic timeline.
// Callers that already hold a stage's start time.Now() reuse it here, so
// tracing adds no extra clock reads to paths that time themselves anyway.
func (r *Rec) Offset(t time.Time) time.Duration {
	if r == nil {
		return 0
	}
	return t.Sub(r.start)
}

// AddSpan records one stage span.
func (r *Rec) AddSpan(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// AddPlan records one shard's planning decision.
func (r *Rec) AddPlan(d PlanDecision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.plans = append(r.plans, d)
	r.mu.Unlock()
}

// AddPruned records one shard skipped by extent pruning.
func (r *Rec) AddPruned(p PrunedShard) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.pruned = append(r.pruned, p)
	r.mu.Unlock()
}

// Snapshot copies the recorded trace out and reports the elapsed time since
// the recorder's birth. The copies are the caller's; recording may continue
// (an abandoned shard search finishing in the background appends to the Rec,
// never to a snapshot).
func (r *Rec) Snapshot() (spans []Span, plans []PlanDecision, pruned []PrunedShard, elapsed time.Duration) {
	if r == nil {
		return nil, nil, nil, 0
	}
	elapsed = time.Since(r.start)
	r.mu.Lock()
	defer r.mu.Unlock()
	spans = append([]Span(nil), r.spans...)
	plans = append([]PlanDecision(nil), r.plans...)
	pruned = append([]PrunedShard(nil), r.pruned...)
	return spans, plans, pruned, elapsed
}
