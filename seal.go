package seal

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"time"

	"github.com/sealdb/seal/internal/baseline"
	"github.com/sealdb/seal/internal/core"
	"github.com/sealdb/seal/internal/engine"
	"github.com/sealdb/seal/internal/geo"
	"github.com/sealdb/seal/internal/gridsig"
	"github.com/sealdb/seal/internal/invidx"
	"github.com/sealdb/seal/internal/irtree"
	"github.com/sealdb/seal/internal/model"
	"github.com/sealdb/seal/internal/text"
)

// Rect is an axis-aligned rectangle: bottom-left (MinX, MinY) to top-right
// (MaxX, MaxY). Coordinates are in arbitrary planar units (the similarity is
// scale-free).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Object is one spatio-textual region of interest to index.
//
// Plain objects set Region. Multi-region objects — e.g. a user whose
// activity clusters into several areas (see ClusterRegions) — set Regions
// instead; their spatial footprint is the union of those rectangles, with
// exact union-area similarity at verification time, and Region is ignored.
type Object struct {
	Region  Rect
	Regions []Rect
	Tokens  []string
}

// Query is a spatio-textual similarity search: find all objects with spatial
// similarity at least TauR and textual similarity at least TauT. Both
// thresholds must lie in (0, 1].
type Query struct {
	Region Rect
	Tokens []string
	TauR   float64
	TauT   float64
}

// Match is one verified answer.
type Match struct {
	// ID is the position of the object in the slice passed to Build.
	ID int
	// SimR and SimT are the exact similarities to the query.
	SimR, SimT float64
	// Score is the combined ranking score Alpha·SimR + (1−Alpha)·SimT,
	// filled for ranked requests (Request.K > 0) and zero otherwise.
	Score float64
}

// Stats reports the cost breakdown of one search.
type Stats struct {
	// Candidates is the number of objects that survived the filter step.
	Candidates int
	// Results is the number of verified answers.
	Results int
	// ListsProbed and PostingsScanned count inverted-index work.
	ListsProbed     int
	PostingsScanned int
	// FilterTime and VerifyTime split the elapsed time by phase.
	FilterTime time.Duration
	VerifyTime time.Duration
	// ShardFanout is the number of shard searches that actually ran: equal
	// to IndexStats.Shards for a full scatter, lower when early termination
	// (Limit, top-k pruning, cancellation) stopped shards before they
	// started, or when the planner pruned shards (see ShardsPruned).
	ShardFanout int
	// ShardsPruned counts shards skipped before dispatch because their
	// partition extent provably cannot reach the query's spatial threshold.
	// Always zero without WithAdaptivePlanning.
	ShardsPruned int
	// ShardErrors counts shards dropped from this query's answer because
	// they failed, timed out, or were quarantined at boot. Always zero
	// without AllowPartial — default queries fail instead of dropping.
	ShardErrors int
	// PlanChoices counts, per filter family name, how many shard searches
	// the adaptive planner routed to that family (ranked requests count one
	// choice per descent round). Nil without WithAdaptivePlanning.
	PlanChoices map[string]int
}

// IndexStats describes a built index.
type IndexStats struct {
	Objects    int
	Vocabulary int
	Method     string
	// Shards is the number of spatial partitions actually built (1 unless
	// WithShards asked for more); IndexBytes sums over all of them.
	Shards     int
	IndexBytes int64
	BuildTime  time.Duration
	// Mapped reports that posting lists are served from mmap-ed sealed
	// segments (the index was opened from a segment directory) rather than
	// rebuilt in memory.
	Mapped bool
	// Compressed reports that posting lists use the delta/quantized
	// encoding instead of the flat fixed-width arena.
	Compressed bool
	// Adaptive reports that the index plans filter families per query
	// (WithAdaptivePlanning); Method then lists every resident family.
	Adaptive bool
}

// ErrEmptyIndex is returned by Build when no objects are supplied.
var ErrEmptyIndex = errors.New("seal: cannot build an index over zero objects")

// Index answers spatio-textual similarity queries. It is immutable after
// Build and safe for concurrent use. Query execution is delegated to the
// sharded scatter-gather engine; with the default single shard the engine
// degenerates to exactly the monolithic index layout.
type Index struct {
	ds    *model.Dataset
	eng   *engine.Engine
	stats IndexStats
}

// Build indexes the objects. The default configuration is the paper's full
// SEAL method; see the With* options for alternatives.
func Build(objects []Object, opts ...Option) (*Index, error) {
	if len(objects) == 0 {
		return nil, ErrEmptyIndex
	}
	cfg := defaultOptions()
	for _, opt := range opts {
		opt(&cfg)
	}
	start := time.Now()

	var b model.Builder
	b.SetSimilarity(cfg.spatialSim, cfg.textualSim)
	for i, o := range objects {
		if len(o.Regions) > 0 {
			set := make(geo.RectSet, len(o.Regions))
			for j, r := range o.Regions {
				set[j] = rectIn(r)
			}
			if _, err := b.AddMulti(set, o.Tokens); err != nil {
				return nil, fmt.Errorf("seal: object %d: %w", i, err)
			}
			continue
		}
		if _, err := b.Add(rectIn(o.Region), o.Tokens); err != nil {
			return nil, fmt.Errorf("seal: object %d: %w", i, err)
		}
	}
	var ds *model.Dataset
	var err error
	if cfg.weights != nil {
		vocab, verr := vocabFromWeights(objects, cfg.weights)
		if verr != nil {
			return nil, verr
		}
		ds, err = b.BuildWithVocab(vocab)
	} else {
		ds, err = b.Build()
	}
	if err != nil {
		return nil, err
	}

	if cfg.autoSet {
		p, aerr := autoGranularity(ds, cfg)
		if aerr != nil {
			return nil, aerr
		}
		cfg.granularity = p
		if cfg.method == MethodSeal {
			cfg.method = MethodGridFilter
		}
	}

	if cfg.adaptive {
		switch cfg.method {
		case MethodSeal, MethodTokenFilter, MethodGridFilter, MethodHybridHash:
		default:
			return nil, fmt.Errorf("seal: WithAdaptivePlanning requires a signature-filter method, got %q", methodName(cfg.method))
		}
		if cfg.segmentDir != "" {
			return nil, errors.New("seal: WithAdaptivePlanning is incompatible with WithSegmentDir (a segment directory persists exactly one filter)")
		}
	}

	if cfg.segmentDir != "" {
		if _, ok := segmentSpec(cfg); !ok {
			return nil, fmt.Errorf("seal: WithSegmentDir does not support method %q (no posting lists to persist)", methodName(cfg.method))
		}
		// A matching segment directory replaces the whole build with an
		// mmap; anything stale, corrupt, or differently configured falls
		// through to a rebuild that overwrites it.
		if man, err := engine.ReadManifest(cfg.segmentDir); err == nil && manifestMatches(man, cfg, ds.Len()) {
			if eng, err := engine.OpenSegmentsAt(cfg.segmentDir, ds); err == nil {
				return &Index{
					ds:  ds,
					eng: eng,
					stats: IndexStats{
						Objects:    ds.Len(),
						Vocabulary: ds.Vocab().Len(),
						Method:     eng.FilterName(),
						Shards:     eng.Shards(),
						IndexBytes: eng.SizeBytes(),
						BuildTime:  time.Since(start),
						Mapped:     true,
						Compressed: man.Compressed,
					},
				}, nil
			}
		}
	}

	engCfg := engine.Config{
		Shards:           cfg.shards,
		BuildParallelism: cfg.buildParallelism,
		NewFilter:        func(sds *model.Dataset) (core.Filter, error) { return buildFilter(sds, cfg) },
	}
	if cfg.adaptive {
		engCfg.NewFilters = func(sds *model.Dataset) ([]core.Filter, error) { return buildFilterFamilies(sds, cfg) }
	}
	eng, err := engine.Build(ds, engCfg)
	if err != nil {
		return nil, err
	}
	if cfg.segmentDir != "" {
		if err := eng.SaveSegments(cfg.segmentDir); err != nil {
			return nil, err
		}
	}
	return &Index{
		ds:  ds,
		eng: eng,
		stats: IndexStats{
			Objects:    ds.Len(),
			Vocabulary: ds.Vocab().Len(),
			Method:     eng.FilterName(),
			Shards:     eng.Shards(),
			IndexBytes: eng.SizeBytes(),
			BuildTime:  time.Since(start),
			Compressed: compressedStats(cfg),
			Adaptive:   eng.Adaptive(),
		},
	}, nil
}

func buildFilter(ds *model.Dataset, cfg options) (core.Filter, error) {
	f, err := newFilter(ds, cfg)
	if err != nil {
		return nil, err
	}
	compressFilter(f, cfg)
	return f, nil
}

// compressFilter applies the configured posting-list compression to f. Only
// the signature filters hold posting lists; the knob is a no-op for
// baselines.
func compressFilter(f core.Filter, cfg options) {
	if cfg.compression != CompressionNone {
		if c, ok := f.(interface{ CompressPostings(invidx.Compression) }); ok {
			c.CompressPostings(invidxCompression(cfg.compression))
		}
	}
}

// buildFilterFamilies builds one shard's interchangeable filter families for
// adaptive planning: the configured base method first (so filters[0] matches
// the static build exactly), then the complementary signature families the
// planner can route to — token-only, the grid at the configured and at a
// coarser granularity (cheaper probes on large rects, more candidates), and
// the hybrid hash. Families duplicating the base method are skipped; every
// family shares the shard's dataset and verification, so any of them returns
// bit-identical answers.
func buildFilterFamilies(ds *model.Dataset, cfg options) ([]core.Filter, error) {
	base, err := buildFilter(ds, cfg)
	if err != nil {
		return nil, err
	}
	filters := []core.Filter{base}
	add := func(f core.Filter, err error) error {
		if err != nil {
			return err
		}
		compressFilter(f, cfg)
		filters = append(filters, f)
		return nil
	}
	if cfg.method != MethodTokenFilter {
		if err := add(core.NewTokenFilter(ds), nil); err != nil {
			return nil, err
		}
	}
	if cfg.method != MethodGridFilter {
		if err := add(core.NewGridFilter(ds, cfg.granularity)); err != nil {
			return nil, err
		}
	}
	// The grid at the configured granularity is always present (as the base
	// or the family above), so the coarse level only adds when it differs.
	if coarse := coarseGranularity(cfg.granularity); coarse != cfg.granularity {
		if err := add(core.NewGridFilter(ds, coarse)); err != nil {
			return nil, err
		}
	}
	if cfg.method != MethodHybridHash {
		if err := add(core.NewHybridHashFilter(ds, cfg.granularity, cfg.hashBuckets)); err != nil {
			return nil, err
		}
	}
	return filters, nil
}

// coarseGranularity is the planner's second grid level: a quarter of the
// configured granularity, floored at 16 cells per side.
func coarseGranularity(p int) int {
	c := p / 4
	if c < 16 {
		c = 16
	}
	if c > p {
		c = p
	}
	return c
}

func newFilter(ds *model.Dataset, cfg options) (core.Filter, error) {
	switch cfg.method {
	case MethodSeal:
		return core.NewHierarchicalFilter(ds, core.HierarchicalConfig{
			MaxLevel:   cfg.maxLevel,
			GridBudget: cfg.gridBudget,
		})
	case MethodTokenFilter:
		return core.NewTokenFilter(ds), nil
	case MethodGridFilter:
		return core.NewGridFilter(ds, cfg.granularity)
	case MethodHybridHash:
		return core.NewHybridHashFilter(ds, cfg.granularity, cfg.hashBuckets)
	case MethodKeywordFirst:
		return baseline.NewKeywordFirst(ds), nil
	case MethodSpatialFirst:
		return baseline.NewSpatialFirst(ds, cfg.rtreeFanout)
	case MethodIRTree:
		return irtree.New(ds, cfg.rtreeFanout)
	case MethodScan:
		return baseline.NewScan(ds), nil
	default:
		return nil, fmt.Errorf("seal: unknown method %d", cfg.method)
	}
}

// methodName names a Method for error messages.
func methodName(m Method) string {
	switch m {
	case MethodSeal:
		return "seal"
	case MethodTokenFilter:
		return "token-filter"
	case MethodGridFilter:
		return "grid-filter"
	case MethodHybridHash:
		return "hybrid-hash"
	case MethodKeywordFirst:
		return "keyword-first"
	case MethodSpatialFirst:
		return "spatial-first"
	case MethodIRTree:
		return "ir-tree"
	case MethodScan:
		return "scan"
	default:
		return fmt.Sprintf("method-%d", int(m))
	}
}

func vocabFromWeights(objects []Object, weights map[string]float64) (*text.Vocab, error) {
	terms := make([]string, 0, len(weights))
	vals := make([]float64, 0, len(weights))
	for term, w := range weights {
		terms = append(terms, term)
		vals = append(vals, w)
	}
	// Deterministic order for reproducible token IDs.
	sortByTerm(terms, vals)
	vocab, err := text.NewWithWeights(terms, vals)
	if err != nil {
		return nil, fmt.Errorf("seal: %w", err)
	}
	for i, o := range objects {
		for _, tok := range o.Tokens {
			if _, ok := vocab.Lookup(tok); !ok {
				return nil, fmt.Errorf("seal: object %d uses token %q missing from WithTokenWeights", i, tok)
			}
		}
	}
	return vocab, nil
}

func sortByTerm(terms []string, vals []float64) {
	idx := make([]int, len(terms))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return strings.Compare(terms[a], terms[b]) })
	t2 := make([]string, len(terms))
	v2 := make([]float64, len(vals))
	for pos, i := range idx {
		t2[pos] = terms[i]
		v2[pos] = vals[i]
	}
	copy(terms, t2)
	copy(vals, v2)
}

func autoGranularity(ds *model.Dataset, cfg options) (int, error) {
	sample := make([]*model.Query, 0, len(cfg.autoGranularity))
	for _, q := range cfg.autoGranularity {
		mq, err := ds.NewQuery(rectIn(q.Region), q.Tokens, q.TauR, q.TauT)
		if err != nil {
			return 0, fmt.Errorf("seal: auto-granularity sample: %w", err)
		}
		sample = append(sample, mq)
	}
	res, err := core.SelectGranularity(ds, sample, cfg.autoMaxLevel, cfg.autoBenefit, gridsig.DefaultCostModel)
	if err != nil {
		return 0, fmt.Errorf("seal: auto-granularity: %w", err)
	}
	return res.P, nil
}

// Search answers q, returning matches sorted by object ID.
//
// Deprecated: Use [Index.Query] — Search(q) is Query(ctx, q.Request()) minus
// the context, the result order and answers are identical.
func (ix *Index) Search(q Query) ([]Match, error) {
	return ix.SearchContext(context.Background(), q)
}

// SearchContext is Search honoring ctx: when the context is canceled or its
// deadline passes mid-scatter, the call returns ctx's error promptly without
// waiting for outstanding shard searches.
//
// Deprecated: Use [Index.Query], which honors ctx the same way.
func (ix *Index) SearchContext(ctx context.Context, q Query) ([]Match, error) {
	res, err := ix.Query(ctx, q.Request())
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// SearchWithStats answers q and reports the cost breakdown. On a sharded
// index the counters sum over shards, and the phase times report aggregate
// work across shards rather than wall-clock time.
//
// Deprecated: Use [Index.Query] with the [CollectStats] option; the
// breakdown arrives as Results.Stats.
func (ix *Index) SearchWithStats(q Query) ([]Match, Stats, error) {
	res, err := ix.Query(context.Background(), q.Request(), CollectStats())
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Matches, *res.Stats, nil
}

// Similarity returns the exact spatial and textual similarities between a
// query (thresholds ignored) and the object with the given ID.
func (ix *Index) Similarity(q Query, id int) (simR, simT float64, err error) {
	if id < 0 || id >= ix.ds.Len() {
		return 0, 0, fmt.Errorf("seal: object ID %d out of range [0,%d)", id, ix.ds.Len())
	}
	mq, err := ix.ds.NewQuery(rectIn(q.Region), q.Tokens, 1, 1)
	if err != nil {
		return 0, 0, err
	}
	oid := model.ObjectID(id)
	return ix.ds.SimR(mq, oid), ix.ds.SimT(mq, oid), nil
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.ds.Len() }

// Object reconstructs the indexed object with the given ID: its region (or
// multi-region set) and token terms, in indexed order. It is the inverse of
// the slice passed to Build, and works on indexes opened from sealed
// segments too — the serving layer uses it to synthesize warmup queries that
// touch real posting lists.
func (ix *Index) Object(id int) (Object, error) {
	if id < 0 || id >= ix.ds.Len() {
		return Object{}, fmt.Errorf("seal: object ID %d out of range [0,%d)", id, ix.ds.Len())
	}
	oid := model.ObjectID(id)
	vocab := ix.ds.Vocab()
	toks := ix.ds.Tokens(oid)
	obj := Object{Tokens: make([]string, len(toks))}
	for i, t := range toks {
		obj.Tokens[i] = vocab.Term(text.TokenID(t))
	}
	if set := ix.ds.MultiRegion(oid); set != nil {
		obj.Regions = make([]Rect, len(set))
		for i, r := range set {
			obj.Regions[i] = Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
		}
		return obj, nil
	}
	r := ix.ds.Region(oid)
	obj.Region = Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	return obj, nil
}

// Stats describes the index.
func (ix *Index) Stats() IndexStats { return ix.stats }

// TokenWeight returns the weight the index assigned to a token (idf by
// default), and false if the token does not occur in the corpus.
func (ix *Index) TokenWeight(token string) (float64, bool) {
	id, ok := ix.ds.Vocab().Lookup(token)
	if !ok {
		return 0, false
	}
	return ix.ds.Vocab().Weight(id), true
}

func rectIn(r Rect) geo.Rect {
	return geo.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func modelObjectID(id int) model.ObjectID { return model.ObjectID(id) }

func defaultParallelism(n int) int {
	p := runtime.GOMAXPROCS(0)
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}
