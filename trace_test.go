package seal_test

// Trace differential tests: requesting a trace must never change an answer —
// traced and untraced runs are bit-identical across shard counts and
// execution modes (threshold, ranked, streamed, limited) — and the trace
// itself must carry every pipeline stage on one timeline, with the adaptive
// planner's decisions when planning is on.

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"github.com/sealdb/seal"
)

// stageCount tallies a trace's spans by stage name.
func stageCount(tr *seal.Trace) map[string]int {
	counts := make(map[string]int)
	for _, s := range tr.Spans {
		counts[s.Stage]++
	}
	return counts
}

// requireSameMatches asserts bit-identity between two match slices.
func requireSameMatches(t *testing.T, label string, got, want []seal.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s match %d: %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// requireTraceShape asserts the invariants every trace satisfies: time zero
// anchored at admission, a positive elapsed clock, and every span lying on
// the recorder's timeline.
func requireTraceShape(t *testing.T, label string, tr *seal.Trace, stages ...string) {
	t.Helper()
	if tr == nil {
		t.Fatalf("%s: no trace collected", label)
	}
	if tr.Elapsed <= 0 {
		t.Fatalf("%s: elapsed %v, want > 0", label, tr.Elapsed)
	}
	counts := stageCount(tr)
	for _, stage := range stages {
		if counts[stage] == 0 {
			t.Fatalf("%s: no %q span recorded (spans: %v)", label, stage, counts)
		}
	}
	for i, s := range tr.Spans {
		if s.Start < 0 || s.Duration < 0 {
			t.Fatalf("%s span %d (%s): negative timing start=%v dur=%v", label, i, s.Stage, s.Start, s.Duration)
		}
	}
	if tr.Spans[0].Stage != "admit" || tr.Spans[0].Shard != -1 || tr.Spans[0].Duration <= 0 {
		t.Fatalf("%s: first span %+v, want a query-level admit span with nonzero duration", label, tr.Spans[0])
	}
}

// TestTraceDifferential: across 1/2/3/8 shards and every execution mode, a
// traced query returns exactly the untraced answer, and the trace reports the
// stages that mode runs.
func TestTraceDifferential(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20260808))
	objects := shardObjects(300, rng)
	queries := shardQueries(12, rng)

	for _, shards := range []int{1, 2, 3, 8} {
		ix, err := seal.Build(objects, seal.WithMethod(seal.MethodSeal), seal.WithMaxLevel(8), seal.WithShards(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for qi, q := range queries {
			label := fmt.Sprintf("shards=%d query=%d", shards, qi)
			req := q.Request()

			// Threshold, default ID order: the materialized scatter path.
			plain, err := ix.Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Trace != nil {
				t.Fatalf("%s: untraced query carried a trace", label)
			}
			traced, err := ix.Query(ctx, req, seal.CollectTrace())
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatches(t, label+" threshold", traced.Matches, plain.Matches)
			requireTraceShape(t, label+" threshold", traced.Trace, "admit", "filter", "verify", "merge")

			// Limited: the verification-capped ID-ordered path.
			wantLimited := plain.Matches
			if len(wantLimited) > 3 {
				wantLimited = wantLimited[:3]
			}
			limited, err := ix.Query(ctx, req, seal.OrderByID(), seal.Limit(3), seal.CollectTrace())
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatches(t, label+" limit", limited.Matches, wantLimited)
			requireTraceShape(t, label+" limit", limited.Trace, "admit", "filter", "merge")

			// Streamed, arrival order: collect everything, compare as a set
			// (arrival order is unspecified), and take the trace through
			// TraceInto since the iterator has no Results to carry it.
			var streamTrace seal.Trace
			var streamed []seal.Match
			for m, err := range ix.Stream(ctx, req, seal.TraceInto(&streamTrace)) {
				if err != nil {
					t.Fatal(err)
				}
				streamed = append(streamed, m)
			}
			slices.SortFunc(streamed, func(a, b seal.Match) int { return a.ID - b.ID })
			requireSameMatches(t, label+" stream", streamed, plain.Matches)
			requireTraceShape(t, label+" stream", &streamTrace, "admit", "filter")

			// Ranked: the top-k descent.
			tq := seal.TopKQuery{Region: q.Region, Tokens: q.Tokens, K: 1 + qi%5, Alpha: 0.5, FloorR: 0.01, FloorT: 0.01}
			plainRanked, err := ix.Query(ctx, tq.Request())
			if err != nil {
				t.Fatal(err)
			}
			tracedRanked, err := ix.Query(ctx, tq.Request(), seal.CollectTrace())
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatches(t, label+" ranked", tracedRanked.Matches, plainRanked.Matches)
			requireTraceShape(t, label+" ranked", tracedRanked.Trace, "admit", "merge")

			// StageTotals mirrors the spans exactly.
			totals := traced.Trace.StageTotals()
			for _, s := range traced.Trace.Spans {
				if totals[s.Stage] < s.Duration {
					t.Fatalf("%s: stage total %v below one of its spans (%v)", label, totals[s.Stage], s.Duration)
				}
			}
		}
	}
}

// TestTraceAdaptivePlans: with adaptive planning every planned shard search
// records its routing decision with the full cost table, pruned shards are
// reported with the bound that pruned them, and tracing still changes no
// answer.
func TestTraceAdaptivePlans(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	objects := shardObjects(300, rng)
	queries := shardQueries(12, rng)

	for _, shards := range []int{1, 3} {
		ix, err := seal.Build(objects, seal.WithMethod(seal.MethodSeal), seal.WithMaxLevel(4),
			seal.WithGranularity(64), seal.WithAdaptivePlanning(), seal.WithShards(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for qi, q := range queries {
			label := fmt.Sprintf("adaptive shards=%d query=%d", shards, qi)
			plain, err := ix.Query(ctx, q.Request())
			if err != nil {
				t.Fatal(err)
			}
			traced, err := ix.Query(ctx, q.Request(), seal.CollectTrace(), seal.CollectStats())
			if err != nil {
				t.Fatal(err)
			}
			requireSameMatches(t, label, traced.Matches, plain.Matches)
			requireTraceShape(t, label, traced.Trace, "admit", "merge")

			tr := traced.Trace
			if len(tr.Plans)+len(tr.Pruned) < shards {
				t.Fatalf("%s: %d plans + %d pruned for %d shards; every shard must be planned or pruned",
					label, len(tr.Plans), len(tr.Pruned), shards)
			}
			for _, p := range tr.Plans {
				if p.Chosen == "" {
					t.Fatalf("%s: plan for shard %d has no chosen family", label, p.Shard)
				}
				if len(p.Families) == 0 {
					t.Fatalf("%s: plan for shard %d has no cost table", label, p.Shard)
				}
				chosenListed := false
				for _, f := range p.Families {
					if f.Family == "" {
						t.Fatalf("%s: unnamed family in cost table: %+v", label, f)
					}
					if f.PredictedNS < 0 || f.AdjustedNS < f.PredictedNS {
						t.Fatalf("%s: implausible costs for %s: predicted %v adjusted %v",
							label, f.Family, f.PredictedNS, f.AdjustedNS)
					}
					chosenListed = chosenListed || f.Family == p.Chosen
				}
				if !chosenListed {
					t.Fatalf("%s: chosen family %q missing from its own cost table", label, p.Chosen)
				}
			}
			for _, pr := range tr.Pruned {
				if pr.Bound >= pr.TauR {
					t.Fatalf("%s: shard %d pruned with bound %v >= tauR %v", label, pr.Shard, pr.Bound, pr.TauR)
				}
			}
			if traced.Stats != nil && traced.Stats.ShardsPruned != len(tr.Pruned) {
				t.Fatalf("%s: stats report %d pruned shards, trace lists %d",
					label, traced.Stats.ShardsPruned, len(tr.Pruned))
			}
		}
	}
}

// TestTraceInto: the option fills the caller's Trace and implies collection;
// batch queries deliver per-query traces but never write the shared pointer.
func TestTraceInto(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	ix, err := seal.Build(shardObjects(120, rng), seal.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	q := shardQueries(1, rng)[0]

	var tr seal.Trace
	res, err := ix.Query(ctx, q.Request(), seal.TraceInto(&tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(tr.Spans) == 0 {
		t.Fatal("TraceInto did not imply CollectTrace or did not fill the target")
	}
	if len(tr.Spans) != len(res.Trace.Spans) || tr.Elapsed != res.Trace.Elapsed {
		t.Fatal("TraceInto target disagrees with Results.Trace")
	}

	var shared seal.Trace
	reqs := []seal.Request{q.Request(), q.Request()}
	for i, br := range ix.QueryBatch(ctx, reqs, seal.TraceInto(&shared)) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		if br.Results.Trace == nil || len(br.Results.Trace.Spans) == 0 {
			t.Fatalf("batch query %d missing its own trace", i)
		}
	}
	if shared.Spans != nil {
		t.Fatal("QueryBatch wrote the shared TraceInto pointer (a data race between queries)")
	}
}
