package seal_test

// Degraded-mode differential tests: with one shard quarantined (corrupt or
// missing segment), strict queries must fail with the sentinel while
// AllowPartial queries must return exactly the full answer minus the lost
// partition's objects — bit-identical similarities for every surviving match.
// WithRepair must instead rebuild the shard and restore exact full answers.

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/sealdb/seal"
	"github.com/sealdb/seal/internal/faultfs"
	"github.com/sealdb/seal/internal/model"
)

// readParts decodes the saved shard partition so tests know exactly which
// global IDs live on each shard.
func readParts(t *testing.T, dir string) [][]model.ObjectID {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "parts.gob"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var parts [][]model.ObjectID
	if err := gob.NewDecoder(f).Decode(&parts); err != nil {
		t.Fatal(err)
	}
	return parts
}

func lostIDs(parts [][]model.ObjectID, shard int) map[int]bool {
	lost := make(map[int]bool, len(parts[shard]))
	for _, id := range parts[shard] {
		lost[int(id)] = true
	}
	return lost
}

func degradedRequests(n int, rng *rand.Rand) []seal.Request {
	reqs := make([]seal.Request, n)
	for i := range reqs {
		tokens := make([]string, 1+rng.Intn(3))
		for j := range tokens {
			tokens[j] = fmt.Sprintf("t%d", rng.Intn(30))
		}
		reqs[i] = seal.Request{
			Region: shardRect(rng, 30),
			Tokens: tokens,
			TauR:   0.02 + rng.Float64()*0.2,
			TauT:   0.02 + rng.Float64()*0.2,
		}
	}
	return reqs
}

// buildSegmented builds a sharded, compressed SEAL index persisted into dir
// and returns the full-answer baseline for reqs.
func buildSegmented(t *testing.T, objects []seal.Object, dir string, reqs []seal.Request) [][]seal.Match {
	t.Helper()
	ix, err := seal.Build(objects,
		seal.WithMethod(seal.MethodSeal), seal.WithMaxLevel(8),
		seal.WithShards(4),
		seal.WithCompression(seal.CompressionQuantized),
		seal.WithSegmentDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	full := make([][]seal.Match, len(reqs))
	for i, req := range reqs {
		res, err := ix.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatal("healthy index answered degraded")
		}
		full[i] = res.Matches
	}
	return full
}

// expectExactMinusShard asserts got is precisely want with the lost
// partition's objects removed — same order, bit-identical similarities.
func expectExactMinusShard(t *testing.T, label string, got, want []seal.Match, lost map[int]bool) {
	t.Helper()
	expected := make([]seal.Match, 0, len(want))
	for _, m := range want {
		if !lost[m.ID] {
			expected = append(expected, m)
		}
	}
	if len(got) != len(expected) {
		t.Fatalf("%s: %d matches, want %d (full %d minus lost shard)", label, len(got), len(expected), len(want))
	}
	for i := range expected {
		if got[i] != expected[i] {
			t.Fatalf("%s match %d: %+v, want %+v", label, i, got[i], expected[i])
		}
	}
}

func TestQuarantineDegradedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	objects := shardObjects(300, rng)
	reqs := degradedRequests(14, rng)
	dir := filepath.Join(t.TempDir(), "segs")
	full := buildSegmented(t, objects, dir, reqs)

	parts := readParts(t, dir)
	const victim = 2
	lost := lostIDs(parts, victim)

	// Truncate the victim shard's segment: the CRC-checked open must reject
	// it and Open must quarantine rather than fail.
	seg := filepath.Join(dir, fmt.Sprintf("shard-%d.seg", victim))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	ix, err := seal.Open(dir)
	if err != nil {
		t.Fatalf("Open with one damaged shard must quarantine, not fail: %v", err)
	}
	defer ix.Close()

	if got := ix.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}
	for _, h := range ix.Health() {
		want := seal.ShardServing
		if h.Shard == victim {
			want = seal.ShardQuarantined
		}
		if h.State != want {
			t.Fatalf("shard %d state %v, want %v (err %q)", h.Shard, h.State, want, h.Err)
		}
		if (h.Err != "") != (h.Shard == victim) {
			t.Fatalf("shard %d health error %q", h.Shard, h.Err)
		}
	}

	ctx := context.Background()
	for qi, req := range reqs {
		// Strict: the default contract never passes a partial answer off as
		// complete — it fails with the sentinel.
		if _, err := ix.Query(ctx, req); !errors.Is(err, seal.ErrShardQuarantined) {
			t.Fatalf("strict query %d: err = %v, want ErrShardQuarantined", qi, err)
		}

		// AllowPartial: exactly the full answer minus the lost partition.
		res, err := ix.Query(ctx, req, seal.AllowPartial(), seal.CollectStats())
		if err != nil {
			t.Fatalf("partial query %d: %v", qi, err)
		}
		if !res.Degraded {
			t.Fatalf("partial query %d: Degraded = false with a quarantined shard", qi)
		}
		if res.Stats.ShardErrors != 1 {
			t.Fatalf("partial query %d: ShardErrors = %d, want 1", qi, res.Stats.ShardErrors)
		}
		expectExactMinusShard(t, fmt.Sprintf("partial query %d", qi), res.Matches, full[qi], lost)

		// Streamed arrival order sees the same degraded set.
		var st seal.Stats
		seen := make(map[int]bool)
		for m, serr := range ix.Stream(ctx, req, seal.AllowPartial(), seal.StatsInto(&st)) {
			if serr != nil {
				t.Fatalf("stream query %d: %v", qi, serr)
			}
			seen[m.ID] = true
		}
		if st.ShardErrors != 1 {
			t.Fatalf("stream query %d: ShardErrors = %d, want 1", qi, st.ShardErrors)
		}
		for _, m := range full[qi] {
			if lost[m.ID] == seen[m.ID] {
				t.Fatalf("stream query %d: object %d lost=%v seen=%v", qi, m.ID, lost[m.ID], seen[m.ID])
			}
		}
	}

	// Ranked: a quarantined shard never feeds the tracker, so every returned
	// object comes from a surviving shard.
	ranked := seal.Request{Region: seal.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		Tokens: []string{"t1", "t2"}, K: 10, Alpha: 0.5, FloorR: 0.001, FloorT: 0.001}
	if _, err := ix.Query(ctx, ranked); !errors.Is(err, seal.ErrShardQuarantined) {
		t.Fatalf("strict ranked query: err = %v, want ErrShardQuarantined", err)
	}
	res, err := ix.Query(ctx, ranked, seal.AllowPartial())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("ranked partial query not marked Degraded")
	}
	for _, m := range res.Matches {
		if lost[m.ID] {
			t.Fatalf("ranked partial answer contains object %d from the quarantined shard", m.ID)
		}
	}
}

func TestQuarantineRepairRestoresExactAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(20260810))
	objects := shardObjects(260, rng)
	reqs := degradedRequests(10, rng)
	dir := filepath.Join(t.TempDir(), "segs")
	full := buildSegmented(t, objects, dir, reqs)

	// A missing segment quarantines just like a corrupt one; WithRepair
	// rebuilds it from the directory's dataset snapshot instead.
	if err := os.Remove(filepath.Join(dir, "shard-1.seg")); err != nil {
		t.Fatal(err)
	}
	ix, err := seal.Open(dir, seal.WithRepair())
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Quarantined(); got != 0 {
		t.Fatalf("Quarantined() = %d after repair, want 0", got)
	}
	rebuilt := false
	for _, h := range ix.Health() {
		if h.Shard == 1 {
			if h.State != seal.ShardRebuilt {
				t.Fatalf("shard 1 state %v, want ShardRebuilt", h.State)
			}
			rebuilt = true
		} else if h.State != seal.ShardServing {
			t.Fatalf("shard %d state %v, want ShardServing", h.Shard, h.State)
		}
	}
	if !rebuilt {
		t.Fatal("no health entry for the repaired shard")
	}
	ctx := context.Background()
	for qi, req := range reqs {
		res, err := ix.Query(ctx, req)
		if err != nil {
			t.Fatalf("query %d after repair: %v", qi, err)
		}
		if res.Degraded {
			t.Fatalf("query %d degraded after repair", qi)
		}
		expectExactMinusShard(t, fmt.Sprintf("repaired query %d", qi), res.Matches, full[qi], nil)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// The repair re-saved the rebuilt segment, so a plain strict-by-shard
	// Open now boots clean and answers identically.
	again, err := seal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if got := again.Quarantined(); got != 0 {
		t.Fatalf("Quarantined() = %d on reopen after repair, want 0", got)
	}
	for qi, req := range reqs {
		res, err := again.Query(ctx, req)
		if err != nil {
			t.Fatalf("reopened query %d: %v", qi, err)
		}
		expectExactMinusShard(t, fmt.Sprintf("reopened query %d", qi), res.Matches, full[qi], nil)
	}
}

func TestShardTimeoutDropsSlowShard(t *testing.T) {
	rng := rand.New(rand.NewSource(20260811))
	objects := shardObjects(300, rng)
	reqs := degradedRequests(6, rng)
	dir := filepath.Join(t.TempDir(), "segs")
	full := buildSegmented(t, objects, dir, reqs)
	parts := readParts(t, dir)
	const victim = 1
	lost := lostIDs(parts, victim)

	ix, err := seal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// ShardTimeout without AllowPartial is a contract error: a strict query
	// has nothing to drop a timed-out shard to.
	if _, err := ix.Query(context.Background(), reqs[0], seal.ShardTimeout(time.Millisecond)); err == nil {
		t.Fatal("ShardTimeout without AllowPartial should be rejected")
	}

	faultfs.Install((&faultfs.Injector{}).DelayShard(victim, 400*time.Millisecond))
	t.Cleanup(faultfs.Uninstall)

	ctx := context.Background()
	for qi, req := range reqs {
		// Without a timeout the slow shard is merely slow: the full exact
		// answer arrives.
		res, err := ix.Query(ctx, req)
		if err != nil {
			t.Fatalf("slow query %d: %v", qi, err)
		}
		if res.Degraded {
			t.Fatalf("slow query %d degraded without a timeout", qi)
		}
		expectExactMinusShard(t, fmt.Sprintf("slow query %d", qi), res.Matches, full[qi], nil)

		// With a timeout well under the injected delay, the slow shard is
		// dropped whole and the rest of the answer is exact.
		res, err = ix.Query(ctx, req, seal.AllowPartial(), seal.ShardTimeout(40*time.Millisecond), seal.CollectStats())
		if err != nil {
			t.Fatalf("timed-out query %d: %v", qi, err)
		}
		if !res.Degraded || res.Stats.ShardErrors != 1 {
			t.Fatalf("timed-out query %d: Degraded=%v ShardErrors=%d, want degraded with 1 drop",
				qi, res.Degraded, res.Stats.ShardErrors)
		}
		expectExactMinusShard(t, fmt.Sprintf("timed-out query %d", qi), res.Matches, full[qi], lost)
	}
}

func TestShardPanicIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(20260812))
	objects := shardObjects(280, rng)
	reqs := degradedRequests(5, rng)
	dir := filepath.Join(t.TempDir(), "segs")
	full := buildSegmented(t, objects, dir, reqs)
	parts := readParts(t, dir)
	const victim = 3
	lost := lostIDs(parts, victim)

	ix, err := seal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	faultfs.Install((&faultfs.Injector{}).PanicShard(victim, "injected shard bug"))
	t.Cleanup(faultfs.Uninstall)

	ctx := context.Background()
	for qi, req := range reqs {
		// A panicking shard must become an error, not a process crash.
		_, err := ix.Query(ctx, req)
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("strict query %d: err = %v, want a recovered panic", qi, err)
		}

		res, err := ix.Query(ctx, req, seal.AllowPartial(), seal.CollectStats())
		if err != nil {
			t.Fatalf("partial query %d: %v", qi, err)
		}
		if !res.Degraded || res.Stats.ShardErrors != 1 {
			t.Fatalf("partial query %d: Degraded=%v ShardErrors=%d", qi, res.Degraded, res.Stats.ShardErrors)
		}
		expectExactMinusShard(t, fmt.Sprintf("partial query %d", qi), res.Matches, full[qi], lost)
	}
}

// TestSentinelErrors: corruption of whole-directory artifacts surfaces the
// wrapped sentinels so operators can branch on errors.Is.
func TestSentinelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(20260813))
	objects := shardObjects(120, rng)
	dir := filepath.Join(t.TempDir(), "segs")
	buildSegmented(t, objects, dir, nil)

	// A garbled manifest is corruption, not absence.
	manifest := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(manifest, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := seal.Open(dir); !errors.Is(err, seal.ErrCorruptSegment) {
		t.Fatalf("garbled manifest: err = %v, want ErrCorruptSegment", err)
	}

	// An unsupported manifest version is a mismatch.
	if err := os.WriteFile(manifest, []byte(`{"version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := seal.Open(dir); !errors.Is(err, seal.ErrManifestMismatch) {
		t.Fatalf("future manifest: err = %v, want ErrManifestMismatch", err)
	}
}
