package seal_test

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	seal "github.com/sealdb/seal"
)

func TestClusterRegions(t *testing.T) {
	var pts []seal.Point
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		pts = append(pts, seal.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3})
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, seal.Point{X: 500 + rng.Float64()*3, Y: rng.Float64() * 3})
	}
	regions, err := seal.ClusterRegions(pts, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %v, want 2", regions)
	}
	if _, err := seal.ClusterRegions(nil, 2, 1); err == nil {
		t.Fatal("no points should error")
	}
}

// TestMultiRegionObjects: the L-shaped footprint rejects queries in its
// notch even though the MBR overlaps them.
func TestMultiRegionObjects(t *testing.T) {
	objects := []seal.Object{
		{
			Regions: []seal.Rect{
				{MinX: 0, MinY: 0, MaxX: 10, MaxY: 2},
				{MinX: 0, MinY: 2, MaxX: 2, MaxY: 10},
			},
			Tokens: []string{"ell", "corner"},
		},
		{Region: seal.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, Tokens: []string{"block", "corner"}},
	}
	for _, m := range []seal.Method{seal.MethodSeal, seal.MethodGridFilter, seal.MethodScan, seal.MethodIRTree} {
		ix, err := seal.Build(objects, seal.WithMethod(m), seal.WithGranularity(8), seal.WithRTreeFanout(4))
		if err != nil {
			t.Fatal(err)
		}
		// A query inside the notch: overlaps the MBR of o0 but none of its
		// rectangles; overlaps o1 fully.
		matches, err := ix.Search(seal.Query{
			Region: seal.Rect{MinX: 4, MinY: 4, MaxX: 9, MaxY: 9},
			Tokens: []string{"ell", "block", "corner"},
			TauR:   0.2, TauT: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 1 || matches[0].ID != 1 {
			t.Fatalf("%s: matches = %v, want only the block", ix.Stats().Method, matches)
		}
		// A query along the horizontal bar matches both.
		matches, err = ix.Search(seal.Query{
			Region: seal.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 2},
			Tokens: []string{"ell", "block", "corner"},
			TauR:   0.15, TauT: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 2 {
			t.Fatalf("%s: bar query matches = %v, want both objects", ix.Stats().Method, matches)
		}
	}
}

func TestFootprint(t *testing.T) {
	objects := []seal.Object{
		{Region: seal.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Tokens: []string{"a"}},
		{Regions: []seal.Rect{{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, {MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}}, Tokens: []string{"b"}},
	}
	ix, err := seal.Build(objects, seal.WithMethod(seal.MethodScan))
	if err != nil {
		t.Fatal(err)
	}
	fp0, err := ix.Footprint(0)
	if err != nil || len(fp0) != 1 {
		t.Fatalf("plain footprint = %v, %v", fp0, err)
	}
	fp1, err := ix.Footprint(1)
	if err != nil || len(fp1) != 2 {
		t.Fatalf("multi footprint = %v, %v", fp1, err)
	}
	if _, err := ix.Footprint(5); err == nil {
		t.Fatal("out-of-range footprint should error")
	}
}

func TestSearchTopKPublic(t *testing.T) {
	ix, err := seal.Build(paperObjects())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.SearchTopK(seal.TopKQuery{
		Region: paperQuery().Region,
		Tokens: paperQuery().Tokens,
		K:      3,
		Alpha:  0.5,
		FloorR: 0.05,
		FloorT: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != 1 {
		t.Fatalf("top result = %+v, want o2 first", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("not sorted by score: %+v", got)
		}
	}
	if _, err := ix.SearchTopK(seal.TopKQuery{K: 0}); err == nil {
		t.Fatal("K=0 should error")
	}
}

func TestSearchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objects := randomObjects(rng, 300)
	ix, err := seal.Build(objects)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]seal.Query, 40)
	for i := range queries {
		queries[i] = randomQuery(rng, objects)
	}
	want := make([][]seal.Match, len(queries))
	for i, q := range queries {
		want[i], err = ix.Search(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, par := range []int{0, 1, 4, 100} {
		got, err := ix.SearchBatch(queries, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: batch results differ from serial", par)
		}
	}
	// A bad query aborts with a positional error.
	bad := append([]seal.Query(nil), queries...)
	bad[7].TauR = 0
	if _, err := ix.SearchBatch(bad, 4); err == nil {
		t.Fatal("bad query should fail the batch")
	}
}

// TestTopKStability: repeated top-k calls return identical rankings
// (deterministic tie-breaks).
func TestTopKStability(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	objects := randomObjects(rng, 250)
	ix, err := seal.Build(objects)
	if err != nil {
		t.Fatal(err)
	}
	q := seal.TopKQuery{
		Region: randomQuery(rng, objects).Region,
		Tokens: objects[0].Tokens,
		K:      10,
		Alpha:  0.4,
	}
	first, err := ix.SearchTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := ix.SearchTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs from first", i)
		}
	}
	// Scores are within [0,1] and sorted.
	if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i].Score > first[j].Score }) {
		// Equal scores are allowed; verify with tolerance.
		for i := 1; i < len(first); i++ {
			if first[i].Score-first[i-1].Score > 1e-12 {
				t.Fatalf("scores not descending: %+v", first)
			}
		}
	}
	for _, m := range first {
		if m.Score < 0 || m.Score > 1+1e-9 || math.IsNaN(m.Score) {
			t.Fatalf("score out of range: %+v", m)
		}
	}
}
