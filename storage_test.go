package seal_test

// Storage differential property tests: compression and mmap-backed segments
// are storage layouts, not algorithms, so every combination of filter
// method, shard count, and storage variant must return bit-identical answers
// — same IDs, same similarities, same top-k order — to the in-memory flat
// build it mirrors.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/sealdb/seal"
)

func expectSameAnswers(t *testing.T, label string, base, got *seal.Index, queries []seal.Query) {
	t.Helper()
	for qi, q := range queries {
		want, err := base.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Search(q)
		if err != nil {
			t.Fatalf("%s query %d: %v", label, qi, err)
		}
		if len(have) != len(want) {
			t.Fatalf("%s query %d: %d matches, want %d", label, qi, len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("%s query %d match %d: %+v, want %+v", label, qi, i, have[i], want[i])
			}
		}
	}
	for qi, q := range queries[:4] {
		tq := seal.TopKQuery{Region: q.Region, Tokens: q.Tokens, K: 1 + qi*3, Alpha: 0.5, FloorR: 0.01, FloorT: 0.01}
		want, err := base.SearchTopK(tq)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.SearchTopK(tq)
		if err != nil {
			t.Fatalf("%s topk %d: %v", label, qi, err)
		}
		if len(have) != len(want) {
			t.Fatalf("%s topk %d: %d results, want %d", label, qi, len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("%s topk %d rank %d: %+v, want %+v", label, qi, i, have[i], want[i])
			}
		}
	}
}

// TestStorageDifferential: for every signature method and shard count, the
// compressed (quantized and exact), segment-saved, segment-reopened, and
// Open-booted variants must answer exactly like the in-memory flat build.
func TestStorageDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	objects := shardObjects(250, rng)
	queries := shardQueries(12, rng)

	methods := []struct {
		name string
		opts []seal.Option
	}{
		{"seal", []seal.Option{seal.WithMethod(seal.MethodSeal), seal.WithMaxLevel(8)}},
		{"token", []seal.Option{seal.WithMethod(seal.MethodTokenFilter)}},
		{"grid", []seal.Option{seal.WithMethod(seal.MethodGridFilter), seal.WithGranularity(64)}},
		{"hybrid", []seal.Option{seal.WithMethod(seal.MethodHybridHash), seal.WithGranularity(32), seal.WithHashBuckets(127)}},
	}
	for _, method := range methods {
		t.Run(method.name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 3, 8} {
				opts := func(extra ...seal.Option) []seal.Option {
					all := append([]seal.Option(nil), method.opts...)
					all = append(all, seal.WithShards(shards))
					return append(all, extra...)
				}
				base, err := seal.Build(objects, opts()...)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}

				for _, c := range []struct {
					name string
					mode seal.Compression
				}{{"quant", seal.CompressionQuantized}, {"exact", seal.CompressionExact}} {
					comp, err := seal.Build(objects, opts(seal.WithCompression(c.mode))...)
					if err != nil {
						t.Fatalf("shards=%d %s: %v", shards, c.name, err)
					}
					if !comp.Stats().Compressed {
						t.Fatalf("shards=%d %s: Stats().Compressed = false", shards, c.name)
					}
					expectSameAnswers(t, fmt.Sprintf("shards=%d %s", shards, c.name), base, comp, queries)
				}

				dir := filepath.Join(t.TempDir(), "segs")
				saved, err := seal.Build(objects, opts(seal.WithCompression(seal.CompressionQuantized), seal.WithSegmentDir(dir))...)
				if err != nil {
					t.Fatalf("shards=%d save: %v", shards, err)
				}
				if saved.Stats().Mapped {
					t.Fatalf("shards=%d: first build reported Mapped", shards)
				}
				expectSameAnswers(t, fmt.Sprintf("shards=%d saved", shards), base, saved, queries)

				reopened, err := seal.Build(objects, opts(seal.WithCompression(seal.CompressionQuantized), seal.WithSegmentDir(dir))...)
				if err != nil {
					t.Fatalf("shards=%d reopen: %v", shards, err)
				}
				if !reopened.Stats().Mapped || !reopened.Stats().Compressed {
					t.Fatalf("shards=%d: rebuild did not map existing segments (stats %+v)", shards, reopened.Stats())
				}
				expectSameAnswers(t, fmt.Sprintf("shards=%d mapped", shards), base, reopened, queries)
				if err := reopened.Close(); err != nil {
					t.Fatal(err)
				}

				opened, err := seal.Open(dir)
				if err != nil {
					t.Fatalf("shards=%d Open: %v", shards, err)
				}
				if !opened.Stats().Mapped {
					t.Fatalf("shards=%d: Open did not report Mapped", shards)
				}
				if got := opened.Stats().Shards; got != shards {
					t.Fatalf("shards=%d: Open reports %d shards", shards, got)
				}
				expectSameAnswers(t, fmt.Sprintf("shards=%d opened", shards), base, opened, queries)
				if err := opened.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSegmentDirUncompressed: raw (uncompressed) segments round-trip too.
func TestSegmentDirUncompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	objects := shardObjects(150, rng)
	queries := shardQueries(8, rng)
	dir := filepath.Join(t.TempDir(), "segs")

	base, err := seal.Build(objects, seal.WithMethod(seal.MethodTokenFilter))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seal.Build(objects, seal.WithMethod(seal.MethodTokenFilter), seal.WithSegmentDir(dir)); err != nil {
		t.Fatal(err)
	}
	opened, err := seal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if opened.Stats().Compressed {
		t.Fatal("raw segments reported Compressed")
	}
	expectSameAnswers(t, "raw segments", base, opened, queries)
}

// TestSegmentDirRebuildsOnMismatch: a segment directory built from different
// objects or a different configuration must be rebuilt, not served.
func TestSegmentDirRebuildsOnMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	objects := shardObjects(120, rng)
	changed := shardObjects(120, rand.New(rand.NewSource(78)))
	dir := filepath.Join(t.TempDir(), "segs")

	if _, err := seal.Build(objects, seal.WithMethod(seal.MethodGridFilter), seal.WithGranularity(32), seal.WithSegmentDir(dir)); err != nil {
		t.Fatal(err)
	}
	// Different corpus, same directory: fingerprint mismatch forces a
	// rebuild that overwrites the directory.
	ix, err := seal.Build(changed, seal.WithMethod(seal.MethodGridFilter), seal.WithGranularity(32), seal.WithSegmentDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Mapped {
		t.Fatal("mismatched dataset was served from stale segments")
	}
	// Different granularity: configuration mismatch also rebuilds.
	ix2, err := seal.Build(changed, seal.WithMethod(seal.MethodGridFilter), seal.WithGranularity(64), seal.WithSegmentDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Stats().Mapped {
		t.Fatal("mismatched granularity was served from stale segments")
	}
	// A corrupt segment file falls back to rebuild as well.
	seg := filepath.Join(dir, "shard-0.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ix3, err := seal.Build(changed, seal.WithMethod(seal.MethodGridFilter), seal.WithGranularity(64), seal.WithSegmentDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if ix3.Stats().Mapped {
		t.Fatal("corrupt segment was served")
	}
	if _, err := seal.Open(dir); err != nil {
		t.Fatalf("rebuild did not repair the corrupt directory: %v", err)
	}
}

// TestSegmentDirRejectsBaselines: methods without posting lists cannot
// persist segments.
func TestSegmentDirRejectsBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objects := shardObjects(50, rng)
	for _, m := range []seal.Method{seal.MethodScan, seal.MethodKeywordFirst, seal.MethodSpatialFirst, seal.MethodIRTree} {
		if _, err := seal.Build(objects, seal.WithMethod(m), seal.WithSegmentDir(t.TempDir())); err == nil {
			t.Fatalf("method %d: WithSegmentDir should fail", m)
		}
	}
}

// TestOpenMissingDir: Open on an empty or absent directory errors cleanly.
func TestOpenMissingDir(t *testing.T) {
	if _, err := seal.Open(t.TempDir()); err == nil {
		t.Fatal("Open on empty dir should fail")
	}
	if _, err := seal.Open(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("Open on missing dir should fail")
	}
}
