// Benchmarks regenerating each table/figure of the paper at reduced scale.
// One benchmark per experiment exercises its representative configuration;
// the full parameter sweeps (all thresholds, all granularities) are produced
// by cmd/sealbench. Shared datasets and indexes build once per process.
package seal_test

import (
	"sync"
	"testing"

	"github.com/sealdb/seal/internal/bench"
	"github.com/sealdb/seal/internal/core"
	"github.com/sealdb/seal/internal/gen"
	"github.com/sealdb/seal/internal/model"
)

var (
	benchOnce sync.Once
	benchEnv  *bench.Env
)

// benchConfig keeps `go test -bench=.` under a few minutes while preserving
// every comparative shape.
var benchConfig = bench.Config{
	TwitterN:     15000,
	USAN:         15000,
	Queries:      30,
	Seed:         42,
	HierBudget:   8,
	HierMaxLevel: 11,
	RTreeFanout:  32,
}

func env(b *testing.B) *bench.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv = bench.NewEnv(benchConfig) })
	return benchEnv
}

// runWorkload executes the workload once per b.N iteration and reports
// per-query metrics.
func runWorkload(b *testing.B, ds *model.Dataset, f core.Filter, specs []gen.QuerySpec, tauR, tauT float64) {
	b.Helper()
	queries := make([]*model.Query, len(specs))
	for i, s := range specs {
		q, err := s.Compile(ds, tauR, tauT)
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = q
	}
	searcher := core.NewSearcher(ds, f)
	var candidates, results int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			_, st := searcher.Search(q)
			candidates += st.Candidates
			results += st.Results
		}
	}
	b.StopTimer()
	perQuery := float64(b.N * len(queries))
	b.ReportMetric(float64(b.Elapsed().Microseconds())/perQuery, "µs/query")
	b.ReportMetric(float64(candidates)/perQuery, "cand/query")
	b.ReportMetric(float64(results)/perQuery, "res/query")
}

func workload(b *testing.B, dsName, kind string) (*model.Dataset, []gen.QuerySpec) {
	b.Helper()
	e := env(b)
	ds, err := e.Dataset(dsName)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := e.Workload(dsName, kind)
	if err != nil {
		b.Fatal(err)
	}
	return ds, specs
}

func filter(b *testing.B, dsName string, spec bench.FilterSpec) core.Filter {
	b.Helper()
	f, err := env(b).Filter(dsName, spec)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkTable1IndexBuild measures building the full SEAL index (the
// HierarchicalInv row of Table 1).
func BenchmarkTable1IndexBuild(b *testing.B) {
	ds, _ := workload(b, "twitter", "large")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := core.NewHierarchicalFilter(ds, core.HierarchicalConfig{
			MaxLevel:   benchConfig.HierMaxLevel,
			GridBudget: benchConfig.HierBudget,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(f.SizeBytes())/(1<<20), "MB")
	}
}

// Figure 12: TokenFilter vs GridFilter at the default thresholds.
func BenchmarkFig12TokenFilterLarge(b *testing.B) {
	ds, specs := workload(b, "twitter", "large")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "token"}), specs, 0.4, 0.4)
}

func BenchmarkFig12GridFilter1024Large(b *testing.B) {
	ds, specs := workload(b, "twitter", "large")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "grid", P: 1024}), specs, 0.4, 0.4)
}

func BenchmarkFig12TokenFilterSmall(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "token"}), specs, 0.4, 0.4)
}

func BenchmarkFig12GridFilter1024Small(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "grid", P: 1024}), specs, 0.4, 0.4)
}

// Figure 13: the granularity sweep's endpoints and middle.
func BenchmarkFig13Granularity64(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "grid", P: 64}), specs, 0.4, 0.4)
}

func BenchmarkFig13Granularity1024(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "grid", P: 1024}), specs, 0.4, 0.4)
}

func BenchmarkFig13Granularity4096(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "grid", P: 4096}), specs, 0.4, 0.4)
}

// Figure 14: hash-based hybrid vs grid-only at 1024.
func BenchmarkFig14Hybrid1024Large(b *testing.B) {
	ds, specs := workload(b, "twitter", "large")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "hybrid", P: 1024}), specs, 0.4, 0.4)
}

func BenchmarkFig14Hybrid1024Small(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "hybrid", P: 1024}), specs, 0.4, 0.4)
}

// Figure 15: hash vs hierarchical hybrid signatures at the paper's
// thresholds (tau_R=0.4, tau_T=0.1).
func BenchmarkFig15HashBucketed(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "hybrid", P: 1024, Buckets: 1 << 16}), specs, 0.4, 0.1)
}

func BenchmarkFig15Hierarchical(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "seal"}), specs, 0.4, 0.1)
}

// Figures 16: the four methods on Twitter at default thresholds
// (small-region queries, the harder workload).
func BenchmarkFig16IRTree(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "irtree"}), specs, 0.4, 0.4)
}

func BenchmarkFig16Keyword(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "keyword"}), specs, 0.4, 0.4)
}

func BenchmarkFig16Spatial(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "spatial"}), specs, 0.4, 0.4)
}

func BenchmarkFig16Seal(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "seal"}), specs, 0.4, 0.4)
}

// Figure 17: the same comparison's endpoints on the USA dataset.
func BenchmarkFig17IRTreeUSA(b *testing.B) {
	ds, specs := workload(b, "usa", "small")
	runWorkload(b, ds, filter(b, "usa", bench.FilterSpec{Kind: "irtree"}), specs, 0.4, 0.4)
}

func BenchmarkFig17SealUSA(b *testing.B) {
	ds, specs := workload(b, "usa", "small")
	runWorkload(b, ds, filter(b, "usa", bench.FilterSpec{Kind: "seal"}), specs, 0.4, 0.4)
}

// Figure 18: scalability — Seal at half and full dataset size.
func BenchmarkFig18SealHalfScale(b *testing.B) {
	benchScaled(b, benchConfig.TwitterN/2)
}

func BenchmarkFig18SealFullScale(b *testing.B) {
	benchScaled(b, benchConfig.TwitterN)
}

func benchScaled(b *testing.B, n int) {
	b.Helper()
	e := env(b)
	ds, err := e.ScaledTwitter(n)
	if err != nil {
		b.Fatal(err)
	}
	f, err := e.FilterFor(ds, bench.FilterSpec{Kind: "seal"})
	if err != nil {
		b.Fatal(err)
	}
	specs, err := gen.Queries(ds, gen.LargeRegionConfig(benchConfig.Queries, benchConfig.Seed+300))
	if err != nil {
		b.Fatal(err)
	}
	runWorkload(b, ds, f, specs, 0.3, 0.4)
}

// Ablation: threshold-aware pruning off (plain Sig-Filter) vs on.
func BenchmarkAblationPlainTokenFilter(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "plaintoken"}), specs, 0.4, 0.4)
}

func BenchmarkAblationPrefixTokenFilter(b *testing.B) {
	ds, specs := workload(b, "twitter", "small")
	runWorkload(b, ds, filter(b, "twitter", bench.FilterSpec{Kind: "token"}), specs, 0.4, 0.4)
}

// Extension: top-k via threshold descent over the Seal filter vs a scan.
func BenchmarkTopKSeal(b *testing.B) {
	benchTopK(b, bench.FilterSpec{Kind: "seal"})
}

func BenchmarkTopKScan(b *testing.B) {
	benchTopK(b, bench.FilterSpec{Kind: "scan"})
}

func benchTopK(b *testing.B, spec bench.FilterSpec) {
	b.Helper()
	ds, specs := workload(b, "twitter", "small")
	f := filter(b, "twitter", spec)
	searcher := core.NewSearcher(ds, f)
	opts := core.TopKOptions{K: 10, Alpha: 0.5, FloorR: 0.01, FloorT: 0.01}
	var results int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			found, err := searcher.TopK(s.Region, s.Terms, opts)
			if err != nil {
				b.Fatal(err)
			}
			results += len(found)
		}
	}
	b.StopTimer()
	perQuery := float64(b.N * len(specs))
	b.ReportMetric(float64(b.Elapsed().Microseconds())/perQuery, "µs/query")
	b.ReportMetric(float64(results)/perQuery, "res/query")
}
