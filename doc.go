// Package seal is a Go implementation of SEAL (Spatio-tExtuAl simiLarity
// search), the filter-and-verification framework for similarity search over
// regions of interest introduced by Fan, Li, Zhou, Chen and Hu in "SEAL:
// Spatio-Textual Similarity Search", PVLDB 5(9), 2012.
//
// A dataset is a collection of spatio-textual objects, each an axis-aligned
// rectangle (minimum bounding rectangle, MBR) plus a set of textual tokens.
// A query supplies its own region, tokens, and two thresholds; the answer is
// every object o with
//
//	simR(q, o) = |q.R ∩ o.R| / |q.R ∪ o.R| ≥ TauR   (spatial Jaccard), and
//	simT(q, o) = Σ_{t∈q.T∩o.T} w(t) / Σ_{t∈q.T∪o.T} w(t) ≥ TauT
//
// where token weights default to idf over the indexed corpus.
//
// # Quick start
//
//	objects := []seal.Object{
//	    {Region: seal.Rect{0, 0, 10, 10}, Tokens: []string{"coffee", "mocha"}},
//	    {Region: seal.Rect{5, 5, 20, 18}, Tokens: []string{"coffee", "tea"}},
//	}
//	ix, err := seal.Build(objects)
//	if err != nil { ... }
//	matches, err := ix.Search(seal.Query{
//	    Region: seal.Rect{2, 2, 12, 12},
//	    Tokens: []string{"coffee", "mocha"},
//	    TauR:   0.2,
//	    TauT:   0.3,
//	})
//
// # Methods
//
// The default index is the paper's full SEAL method: hierarchical hybrid
// signatures selected per token by the greedy HSS algorithm, probed with
// threshold-aware (prefix) pruning, followed by exact verification. The
// other filters and baselines evaluated in the paper are available through
// WithMethod: textual signatures only, uniform-grid spatial signatures,
// hash-based hybrid signatures, keyword-first, spatial-first (R-tree),
// IR-tree, and a full scan.
//
// All methods return exactly the same answers — every filter is complete —
// so the choice only affects speed and index size.
//
// # Sharding and concurrency
//
// WithShards(n) splits the index into n spatial partitions (Z-order
// chunks of near-equal size, round-robin for degenerate distributions).
// Shards build concurrently — WithBuildParallelism bounds the workers — and
// every search runs scatter-gather: shards search in parallel with pooled
// per-shard searchers, results merge in the monolithic order, and top-k
// descents prune cooperatively against the running global k-th-best score.
// Sharding never changes answers; every shard count returns exactly the
// matches, similarities and top-k order of the 1-shard index, which remains
// the default.
//
// # Context-aware search
//
// SearchContext, SearchTopKContext and SearchBatchContext honor
// context.Context: a canceled context or an expired deadline stops the
// scatter mid-flight and returns ctx's error promptly. SearchBatch cancels
// its outstanding queries as soon as one query fails.
package seal
