// Package seal is a Go implementation of SEAL (Spatio-tExtuAl simiLarity
// search), the filter-and-verification framework for similarity search over
// regions of interest introduced by Fan, Li, Zhou, Chen and Hu in "SEAL:
// Spatio-Textual Similarity Search", PVLDB 5(9), 2012.
//
// A dataset is a collection of spatio-textual objects, each an axis-aligned
// rectangle (minimum bounding rectangle, MBR) plus a set of textual tokens.
// A query supplies its own region, tokens, and two thresholds; the answer is
// every object o with
//
//	simR(q, o) = |q.R ∩ o.R| / |q.R ∪ o.R| ≥ TauR   (spatial Jaccard), and
//	simT(q, o) = Σ_{t∈q.T∩o.T} w(t) / Σ_{t∈q.T∪o.T} w(t) ≥ TauT
//
// where token weights default to idf over the indexed corpus.
//
// # Quick start
//
//	objects := []seal.Object{
//	    {Region: seal.Rect{0, 0, 10, 10}, Tokens: []string{"coffee", "mocha"}},
//	    {Region: seal.Rect{5, 5, 20, 18}, Tokens: []string{"coffee", "tea"}},
//	}
//	ix, err := seal.Build(objects)
//	if err != nil { ... }
//	res, err := ix.Query(ctx, seal.Request{
//	    Region: seal.Rect{2, 2, 12, 12},
//	    Tokens: []string{"coffee", "mocha"},
//	    TauR:   0.2,
//	    TauT:   0.3,
//	})
//	for _, m := range res.Matches { ... }
//
// # Query API
//
// One Request covers both query models. A threshold request (TauR/TauT in
// (0, 1]) returns every object passing both thresholds; a ranked request
// (K > 0) returns the K objects maximizing Alpha·simR + (1−Alpha)·simT above
// similarity floors, with the score in Match.Score. Three execution shapes
// share the same engine:
//
//	res, err := ix.Query(ctx, req, opts...)   // materialized *Results
//	for m, err := range ix.Stream(ctx, req, opts...) { ... }
//	outs := ix.QueryBatch(ctx, reqs, opts...) // per-query Results/errors
//
// QueryOption carries the per-query knobs: Limit and Offset page through
// results, OrderByID/OrderByScore/OrderByArrival pick the order,
// CollectStats and StatsInto report the cost breakdown, ShardParallelism
// and BatchParallelism bound concurrency. Limit is a work reducer: the
// engine counts emissions across shards atomically and interrupts the
// outstanding shard searches (and ranked descents) once the limit is
// reached, so fewer postings are scanned and fewer candidates verified.
// Stream's default arrival order yields matches while shards are still
// searching; breaking out of the loop cancels the remaining work.
//
// # Migrating from the legacy Search methods
//
// The pre-existing entry points remain as deprecated wrappers:
//
//	ix.Search(q)                      → ix.Query(ctx, q.Request())
//	ix.SearchContext(ctx, q)          → ix.Query(ctx, q.Request())
//	ix.SearchWithStats(q)             → ix.Query(ctx, q.Request(), seal.CollectStats())
//	ix.SearchTopK(tq)                 → ix.Query(ctx, tq.Request())
//	ix.SearchTopKContext(ctx, tq)     → ix.Query(ctx, tq.Request())
//	ix.SearchBatch(qs, p)             → ix.QueryBatch(ctx, reqs, seal.BatchParallelism(p))
//	ix.SearchBatchContext(ctx, qs, p) → ix.QueryBatch(ctx, reqs, seal.BatchParallelism(p))
//
// Result orders are preserved (threshold queries default to OrderByID,
// ranked ones to OrderByScore). QueryBatch reports each query's error in
// its own BatchResult slot instead of discarding completed work on the
// first failure, which is the one behavioral upgrade over SearchBatch.
//
// # Methods
//
// The default index is the paper's full SEAL method: hierarchical hybrid
// signatures selected per token by the greedy HSS algorithm, probed with
// threshold-aware (prefix) pruning, followed by exact verification. The
// other filters and baselines evaluated in the paper are available through
// WithMethod: textual signatures only, uniform-grid spatial signatures,
// hash-based hybrid signatures, keyword-first, spatial-first (R-tree),
// IR-tree, and a full scan.
//
// All methods return exactly the same answers — every filter is complete —
// so the choice only affects speed and index size.
//
// # Sharding and concurrency
//
// WithShards(n) splits the index into n spatial partitions (Z-order
// chunks of near-equal size, round-robin for degenerate distributions).
// Shards build concurrently — WithBuildParallelism bounds the workers — and
// every search runs scatter-gather: shards search in parallel with pooled
// per-shard searchers, results merge in the monolithic order, and top-k
// descents prune cooperatively against the running global k-th-best score.
// Sharding never changes answers; every shard count returns exactly the
// matches, similarities and top-k order of the 1-shard index, which remains
// the default.
//
// # Context-aware search
//
// Query, Stream and QueryBatch honor context.Context: a canceled context or
// an expired deadline stops the scatter mid-flight and returns (or yields)
// ctx's error promptly.
//
// # Performance
//
// The threshold hot path runs an accumulate-then-verify pipeline. Filters
// whose posting keys prove token membership (token, exact-key hybrid,
// hierarchical) mark each proven (token, object) pair as they scan, and
// verification reconstructs the exact common token weight from those marks
// instead of re-intersecting the token sets — bit-identical to the classic
// sorted-merge similarity, as the differential tests enforce per candidate
// and per shard count. Posting lists live in one contiguous arena with an
// open-addressed key directory (O(1) lookup, sequential traversal, ~40%
// smaller than the previous per-list heap layout), and every per-query
// buffer belongs to a reusable per-shard searcher, so steady-state
// threshold queries allocate nothing. Reproduce the numbers with
//
//	go run ./cmd/sealbench -exp scoring -json
//
// which reports the filter/verify time split, postings scanned, allocs per
// query, and the flat-vs-map posting-layout comparison.
//
// # Query planning
//
// No single filter family wins every query: token-heavy queries favor the
// textual filters, tight rects over hot regions favor the grid, and the
// crossover moves with the data. WithAdaptivePlanning builds every
// interchangeable signature-filter family over the same shards and picks
// the cheapest per (query, shard) with a calibrated cost model: each family
// predicts its probes, postings and verification candidates from cheap
// index statistics, and live search feedback continuously calibrates each
// family's nanoseconds-per-unit, so the model tracks the machine and the
// workload rather than trusting built-in constants. Decisions are cached
// per query shape in a fixed-size lock-free table and recomputed when
// calibration drifts; planning allocates nothing (the planned path keeps
// the 0 allocs/op steady state).
//
// The same option arms spatial shard pruning: a shard whose partition
// extent provably cannot reach the query's TauR — the overlap bound is
// computed against the extent, sound for both Jaccard and Dice — is skipped
// before dispatch, shrinking realized fan-out for selective rects.
//
// Every family is a complete filter over the same exact verification, so
// the planner never changes an answer, only the work; the differential
// tests pin bit-identity against every static family across shard counts.
// Stats.PlanChoices reports how shard searches were routed and
// Stats.ShardsPruned how many dispatches pruning skipped; the serving layer
// exposes both as seal_plan_selected_total and seal_shards_pruned_total in
// /metrics and in /v1/status. Reproduce the planner experiment with
//
//	go run ./cmd/sealbench -exp planner -json
//
// which times every static family against the adaptive engine per query
// class and checks answer identity (BENCH_PR8.json is the committed
// baseline).
//
// # Storage
//
// Two build options control how the signature methods store and boot their
// posting lists; neither changes any answer, only bytes and nanoseconds.
//
// WithCompression re-encodes posting lists after the build: object IDs
// become ascending delta varints and pruning bounds are quantized to 16
// bits (CompressionQuantized, recommended) or kept as full float64s
// (CompressionExact). Quantized bounds round up, so threshold cutoffs stay
// supersets and exact verification returns identical matches. Short lists
// stay raw and dense lists switch to a bitmap automatically, per list.
// Decoding runs through each searcher's reusable scratch, preserving the
// zero-allocation steady state.
//
// WithSegmentDir(dir) persists the index as sealed segments: one SEALIDX2
// file per shard (the flat posting arenas, key table and hash directory as
// page-aligned little-endian sections, each CRC-checksummed), a dataset
// snapshot, the shard partition, and per-token grid selections for
// MethodSeal, with a manifest written last so interrupted saves are never
// mistaken for complete ones. When dir already matches the objects and
// configuration (by fingerprint), Build memory-maps the segments instead of
// re-indexing; Open boots an index purely from dir. Mapped indexes should
// be Closed when done. Only the signature methods persist segments; the
// tree baselines rebuild from the snapshot.
//
//	ix, _ := seal.Build(objects, seal.WithCompression(seal.CompressionQuantized),
//		seal.WithSegmentDir("idx"))   // first run: builds and saves
//	ix, _ = seal.Open("idx")          // later: boots from disk, no indexing
//	defer ix.Close()
//
// IndexStats reports the storage state: Mapped is true for a segment-backed
// index, Compressed when posting lists are stored encoded.
//
// # Failure modes and recovery
//
// Saves are crash-safe: every artifact streams into a temp file that is
// fsynced and atomically renamed into place, and the manifest — removed
// before any shard is rewritten, written after all of them — is the commit
// point. A crash mid-save leaves the previous generation or a complete new
// one, never a torn index; stale temp files are swept at the next open.
//
// Open CRC-verifies every shard segment and quarantines a corrupt or
// missing one instead of failing: the index boots, serves the surviving
// shards, and reports the damage through Health (per-shard
// serving/quarantined/rebuilt states) and Quarantined. WithRepair rebuilds
// damaged shards from the directory's dataset snapshot and re-saves them,
// restoring exact answers; Build with WithSegmentDir falls back to a full
// rebuild when the directory is stale or damaged.
//
// Queries over a degraded index are strict by default: they fail with
// ErrShardQuarantined (match with errors.Is, alongside ErrCorruptSegment
// and ErrManifestMismatch) rather than pass a partial answer off as
// complete. AllowPartial opts in to degraded answers: failed, panicked,
// timed-out, or quarantined shards are dropped from the merge, the answer
// is exactly the full answer minus the lost shards' objects (bit-identical
// similarities on every surviving match), Results.Degraded is set, and
// Stats.ShardErrors counts the drops. ShardTimeout bounds each shard's
// search under AllowPartial; a panic inside a shard search is recovered
// into an error in every mode.
//
//	ix, err := seal.Open(dir)                  // quarantines damage, never torn
//	res, err := ix.Query(ctx, req)             // strict: ErrShardQuarantined
//	res, err = ix.Query(ctx, req,
//		seal.AllowPartial(), seal.ShardTimeout(50*time.Millisecond))
//	if res.Degraded { ... }                    // exact minus the lost shards
//
// # Serving
//
// cmd/sealserver wraps the library in a production HTTP daemon: it boots an
// index (memory-mapping a sealed-segment directory when one matches,
// building and saving otherwise), optionally warms the mapped pages with
// synthetic queries before reporting ready, and serves until SIGTERM with a
// graceful drain.
//
//	sealserver -data twitter.snap -segments /var/lib/seal/tw -warmup 64
//	sealserver -segments /var/lib/seal/tw     # later boots: no snapshot needed
//
// POST /v1/query answers one query, POST /v1/query/batch many, and GET
// /v1/stream emits NDJSON — one record per match as the engine verifies it,
// with a client disconnect canceling the remaining shard work. GET /healthz
// and /readyz split liveness from readiness, GET /metrics exposes
// Prometheus-format counters and latency histograms (including engine work:
// postings scanned, candidates verified, realized shard fan-out), and GET
// /v1/status reports build info, the dataset fingerprint, boot provenance,
// and per-shard health. With -allow-partial the daemon serves degraded
// answers as HTTP 206 (strict daemons answer 503 while a shard is
// quarantined), -shard-timeout adds a per-shard search deadline, and a boot
// with -data present recovers from an unusable segment directory by
// clearing and rebuilding it. The serving layer lives in internal/server
// behind plain http.Handlers; examples/server drives a complete session
// in-process.
//
// # Observability
//
// CollectTrace records a per-query execution trace and attaches it to
// Results.Trace; TraceInto(&tr) fills a caller-owned Trace instead (and is
// the only way to trace Stream, whose iterator has no Results). A Trace is
// one timeline anchored at admission: each Span names its pipeline stage
// (admit, filter, verify, merge), the shard and filter family that ran it,
// its offset from admission, duration, and work counters (postings scanned,
// candidates, results). StageTotals sums durations by stage for a quick
// where-did-the-time-go split. With adaptive planning the trace also carries
// the planner's evidence: per-shard PlanDecisions with the full per-family
// cost table (predicted and risk-adjusted nanoseconds, cold-start and
// cache-hit flags) and, for every shard skipped by spatial pruning, the
// overlap bound that proved it could not reach TauR.
//
//	var tr seal.Trace
//	res, _ := ix.Query(ctx, req, seal.TraceInto(&tr))
//	for stage, d := range tr.StageTotals() { fmt.Println(stage, d) }
//
// Tracing is strictly opt-in and observation-only: a traced query returns
// bit-identical matches and stats (the differential tests enforce this per
// shard count and execution mode), and an untraced query pays nothing — the
// recorder hooks no-op on a nil recorder and the hot path stays at 0
// allocs/op.
//
// The server surfaces the same trace: POST /v1/explain answers with the
// trace, stage totals, plan decisions and pruned shards instead of matches;
// /v1/query?trace=1 rides the trace alongside a normal answer; queries
// slower than -slow-query are counted, logged with their stats, and sampled
// (at most one per second) with a full trace attached. /metrics adds
// per-stage latency histograms (seal_stage_seconds), the slow-query counter,
// and Go runtime vitals; -pprof exposes /debug/pprof off-by-default.
package seal
