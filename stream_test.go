package seal_test

// Stream/limit equivalence property tests for the unified query API: Stream
// must yield exactly Search's result set under every order, Limit must be a
// consistent prefix under the deterministic orders, and a small Limit must
// measurably reduce engine work (not just truncate) on a sharded index.

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/sealdb/seal"
)

// collectStream drains a Stream iterator, failing the test on a yielded
// error.
func collectStream(t *testing.T, ix *seal.Index, req seal.Request, opts ...seal.QueryOption) []seal.Match {
	t.Helper()
	var out []seal.Match
	for m, err := range ix.Stream(context.Background(), req, opts...) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, m)
	}
	return out
}

func sortByID(ms []seal.Match) []seal.Match {
	out := append([]seal.Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func equalMatches(a, b []seal.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamEquivalence is the property test of the unified API: across
// shard counts and filter methods, (1) Stream in its default arrival order
// yields exactly Search's result set, (2) OrderByID streams reproduce
// Search's exact sequence, (3) Limit=L under OrderByID is the exact L-prefix
// of that sequence, and (4) Limit=L in arrival order yields L matches that
// all belong to the full result set.
func TestStreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260731))
	objects := shardObjects(300, rng)
	queries := shardQueries(20, rng)

	methods := []struct {
		name string
		opts []seal.Option
	}{
		{"seal", []seal.Option{seal.WithMethod(seal.MethodSeal), seal.WithMaxLevel(8)}},
		{"grid", []seal.Option{seal.WithMethod(seal.MethodGridFilter), seal.WithGranularity(64)}},
		{"scan", []seal.Option{seal.WithMethod(seal.MethodScan)}},
	}
	for _, method := range methods {
		t.Run(method.name, func(t *testing.T) {
			for _, k := range []int{1, 2, 3, 8} {
				ix, err := seal.Build(objects, append(append([]seal.Option(nil), method.opts...), seal.WithShards(k))...)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				for qi, q := range queries {
					want, err := ix.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					req := q.Request()

					arrival := collectStream(t, ix, req)
					if !equalMatches(sortByID(arrival), want) {
						t.Fatalf("shards=%d query %d: arrival stream set differs from Search", k, qi)
					}

					byID := collectStream(t, ix, req, seal.OrderByID())
					if !equalMatches(byID, want) {
						t.Fatalf("shards=%d query %d: OrderByID stream differs from Search", k, qi)
					}

					L := 1 + qi%4
					prefix := want
					if len(prefix) > L {
						prefix = prefix[:L]
					}
					limID := collectStream(t, ix, req, seal.OrderByID(), seal.Limit(L))
					if !equalMatches(limID, prefix) {
						t.Fatalf("shards=%d query %d: OrderByID Limit(%d) = %v, want prefix %v", k, qi, L, limID, prefix)
					}
					res, err := ix.Query(context.Background(), req, seal.OrderByID(), seal.Limit(L))
					if err != nil {
						t.Fatal(err)
					}
					if !equalMatches(res.Matches, prefix) {
						t.Fatalf("shards=%d query %d: Query OrderByID Limit(%d) differs from prefix", k, qi, L)
					}

					limArrival := collectStream(t, ix, req, seal.Limit(L))
					if len(limArrival) != len(prefix) {
						t.Fatalf("shards=%d query %d: arrival Limit(%d) yielded %d matches, want %d",
							k, qi, L, len(limArrival), len(prefix))
					}
					full := make(map[int]seal.Match, len(want))
					for _, m := range want {
						full[m.ID] = m
					}
					seen := make(map[int]bool, len(limArrival))
					for _, m := range limArrival {
						if full[m.ID] != m {
							t.Fatalf("shards=%d query %d: arrival Limit match %+v not in full result set", k, qi, m)
						}
						if seen[m.ID] {
							t.Fatalf("shards=%d query %d: arrival Limit yielded object %d twice", k, qi, m.ID)
						}
						seen[m.ID] = true
					}
				}
			}
		})
	}
}

// TestStreamRankedEquivalence: ranked requests through Query/Stream must
// reproduce the legacy SearchTopK ranking exactly, and Limit must select its
// score-order prefix.
func TestStreamRankedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260732))
	objects := shardObjects(250, rng)
	queries := shardQueries(12, rng)
	for _, k := range []int{1, 3} {
		ix, err := seal.Build(objects, seal.WithMethod(seal.MethodScan), seal.WithShards(k))
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			tq := seal.TopKQuery{Region: q.Region, Tokens: q.Tokens, K: 2 + qi%6, Alpha: 0.5, FloorR: 0.01, FloorT: 0.01}
			want, err := ix.SearchTopK(tq)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ix.Query(context.Background(), tq.Request())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != len(want) {
				t.Fatalf("shards=%d topk %d: %d matches, want %d", k, qi, len(res.Matches), len(want))
			}
			for i, m := range res.Matches {
				w := want[i]
				if m.ID != w.ID || m.SimR != w.SimR || m.SimT != w.SimT || m.Score != w.Score {
					t.Fatalf("shards=%d topk %d rank %d: %+v, want %+v", k, qi, i, m, w)
				}
			}
			streamed := collectStream(t, ix, tq.Request())
			if !equalMatches(streamed, res.Matches) {
				t.Fatalf("shards=%d topk %d: Stream differs from Query", k, qi)
			}
			if len(want) > 1 {
				L := 1 + qi%(len(want)-1)
				lim := collectStream(t, ix, tq.Request(), seal.Limit(L))
				if !equalMatches(lim, res.Matches[:L]) {
					t.Fatalf("shards=%d topk %d: ranked Limit(%d) is not the score-order prefix", k, qi, L)
				}
			}
		}
	}
}

// TestStreamLimitReducesEngineWork is the acceptance check for engine-level
// early termination: on a sharded index, a small Limit must cut the postings
// scanned and candidates verified well below the unbounded search — the
// limit interrupts shard searches, it does not truncate their output.
func TestStreamLimitReducesEngineWork(t *testing.T) {
	rng := rand.New(rand.NewSource(20260733))
	objects := shardObjects(4000, rng)
	ix, err := seal.Build(objects, seal.WithMethod(seal.MethodScan), seal.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	req := seal.Request{
		Region: seal.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		Tokens: []string{"t1", "t2", "t3"},
		TauR:   0.0005,
		TauT:   0.0005,
	}
	full, err := ix.Query(context.Background(), req, seal.CollectStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Matches) < 100 {
		t.Fatalf("want a dense query for this test, got %d matches", len(full.Matches))
	}

	const limit = 5
	var st seal.Stats
	got := collectStream(t, ix, req, seal.Limit(limit), seal.StatsInto(&st))
	if len(got) != limit {
		t.Fatalf("limited stream yielded %d matches, want %d", len(got), limit)
	}
	if st.PostingsScanned >= full.Stats.PostingsScanned/2 {
		t.Fatalf("Limit(%d) did not reduce postings scanned: %d vs %d unbounded",
			limit, st.PostingsScanned, full.Stats.PostingsScanned)
	}
	if st.Candidates >= full.Stats.Candidates/2 {
		t.Fatalf("Limit(%d) did not reduce candidates: %d vs %d unbounded",
			limit, st.Candidates, full.Stats.Candidates)
	}

	// The materializing path reports the same reduction through Results.Stats.
	res, err := ix.Query(context.Background(), req, seal.OrderByArrival(), seal.Limit(limit), seal.CollectStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != limit {
		t.Fatalf("Query OrderByArrival Limit yielded %d matches, want %d", len(res.Matches), limit)
	}
	if res.Stats.PostingsScanned >= full.Stats.PostingsScanned/2 {
		t.Fatalf("Query with Limit did not reduce postings: %d vs %d",
			res.Stats.PostingsScanned, full.Stats.PostingsScanned)
	}
}

// TestStreamEarlyBreak: breaking out of a Stream loop must cancel the
// outstanding shard searches instead of leaking parked producers; the stats
// then report partial work.
func TestStreamEarlyBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(20260734))
	objects := shardObjects(3000, rng)
	ix, err := seal.Build(objects, seal.WithMethod(seal.MethodScan), seal.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	req := seal.Request{
		Region: seal.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		Tokens: []string{"t1", "t2"},
		TauR:   0.0005,
		TauT:   0.0005,
	}
	var st seal.Stats
	n := 0
	for _, err := range ix.Stream(context.Background(), req, seal.StatsInto(&st)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("consumed %d matches, want 3", n)
	}
	if st.PostingsScanned == 0 || st.PostingsScanned >= 3000 {
		t.Fatalf("abandoned stream stats = %+v, want partial work", st)
	}
}

// TestStreamYieldsQueryError: a malformed request surfaces as a single
// yielded error, not a panic or silent empty stream.
func TestStreamYieldsQueryError(t *testing.T) {
	rng := rand.New(rand.NewSource(20260735))
	ix, err := seal.Build(shardObjects(50, rng))
	if err != nil {
		t.Fatal(err)
	}
	bad := seal.Request{Region: seal.Rect{MaxX: 1, MaxY: 1}, Tokens: []string{"t1"}} // zero thresholds
	sawErr := false
	for _, err := range ix.Stream(context.Background(), bad) {
		if err == nil {
			t.Fatal("malformed request yielded a match")
		}
		sawErr = true
	}
	if !sawErr {
		t.Fatal("malformed request streamed no error")
	}
	// And a canceled context surfaces the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := seal.Request{Region: seal.Rect{MaxX: 50, MaxY: 50}, Tokens: []string{"t1"}, TauR: 0.1, TauT: 0.1}
	var last error
	for _, err := range ix.Stream(ctx, req) {
		last = err
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("canceled stream reported %v, want context.Canceled", last)
	}
}
