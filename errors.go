package seal

// Sentinel errors for storage and degraded-mode failures. Errors returned by
// Open, Build(WithSegmentDir), and Query wrap these, so callers distinguish
// failure classes with errors.Is instead of matching message strings.

import (
	"github.com/sealdb/seal/internal/diskidx"
	"github.com/sealdb/seal/internal/engine"
)

var (
	// ErrCorruptSegment reports on-disk index data that failed validation: a
	// checksum mismatch, a truncated or malformed section, or an unreadable
	// snapshot or partition file. Open quarantines single-shard corruption;
	// this sentinel surfaces when the damage compromises the whole directory.
	ErrCorruptSegment = diskidx.ErrCorrupt

	// ErrManifestMismatch reports a segment directory that is intact but does
	// not belong to this index: a different dataset fingerprint or an
	// unsupported manifest version.
	ErrManifestMismatch = engine.ErrManifestMismatch

	// ErrShardQuarantined reports a query that needed a shard sidelined at
	// open time. Default queries return it so callers never mistake a partial
	// answer for a complete one; opting in with AllowPartial skips the shard
	// and marks the results Degraded instead.
	ErrShardQuarantined = engine.ErrShardQuarantined
)
